// Package coll implements nonblocking collective operations as
// progress-driven schedules, the way MPICH structures them: a
// collective is a fixed graph of point-to-point operations and local
// computation steps, advanced by the collective-schedule hook inside
// collated MPI progress (the Collective_sched_progress entry of the
// paper's Listing 1.1).
//
// The package is transport-agnostic: algorithms build a Schedule
// against a small Transport interface, which the MPI layer implements
// on its communicator's collective context.
//
// Stages come in two flavors. A strict stage (AddStage) completes when
// every operation in it has, and any operation error aborts the whole
// schedule — the classic MPI collective contract. A quorum stage
// (AddQuorum) is the relaxed, eager-SGD-shaped contract: receive
// operations fold their payloads the moment they land, the stage
// settles once enough contributions are in and a staleness bound
// expires, and stragglers are abandoned (cancelled, or handed to the
// caller) instead of waited for.
package coll

import (
	"sync"
	"sync/atomic"

	"gompix/internal/core"
)

// Completable is a pending operation whose completion can be queried
// without side effects (an MPI request behind the scenes).
type Completable interface {
	IsComplete() bool
}

// Transport issues the point-to-point operations a schedule needs.
// Implementations route them through a communicator's collective
// context so they never match application traffic.
type Transport interface {
	// Rank is the caller's rank in the group.
	Rank() int
	// Size is the group size.
	Size() int
	// Isend starts a nonblocking raw-byte send to dst.
	Isend(data []byte, dst, tag int) Completable
	// Irecv starts a nonblocking raw-byte receive from src.
	Irecv(buf []byte, src, tag int) Completable
}

// Op is one schedule operation.
type Op interface {
	// start issues the operation.
	start(tr Transport)
	// isComplete reports whether it has finished.
	isComplete() bool
	// err reports the operation's delivery error, if it completed with
	// one (a dead peer, a downed link). Local steps never fail.
	err() error
	// cancel withdraws a still-pending issued operation when the
	// transport supports it (posted receives do, via Cancel).
	// Completion sweeps use it so an abandoned or aborted stage cannot
	// leak posted operations that poison later tag matches.
	// Best-effort: sends and local steps no-op.
	cancel()
}

// opErr extracts a delivery error from a transport request, when the
// transport exposes one (MPI requests do, via Err). A nil or
// error-less request reports nil.
func opErr(req Completable) error {
	if req == nil {
		return nil
	}
	if e, ok := req.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// reqCancelled reports whether a transport request completed via
// cancellation (no payload delivered, no error either).
func reqCancelled(req Completable) bool {
	if c, ok := req.(interface{ Cancelled() bool }); ok {
		return c.Cancelled()
	}
	return false
}

// cancelReq invokes the request's Cancel, when it has one.
func cancelReq(req Completable) {
	if c, ok := req.(interface{ Cancel() error }); ok {
		c.Cancel()
	}
}

// sendOp sends data to dst when its stage starts.
type sendOp struct {
	data []byte
	dst  int
	tag  int
	req  Completable
}

func (o *sendOp) start(tr Transport) { o.req = tr.Isend(o.data, o.dst, o.tag) }
func (o *sendOp) isComplete() bool   { return o.req != nil && o.req.IsComplete() }
func (o *sendOp) err() error         { return opErr(o.req) }
func (o *sendOp) cancel()            {} // sends are not cancellable (payload may be on the wire)

// Send creates a send operation.
func Send(data []byte, dst, tag int) Op { return &sendOp{data: data, dst: dst, tag: tag} }

// recvOp receives into buf when its stage starts.
type recvOp struct {
	buf []byte
	src int
	tag int
	req Completable
}

func (o *recvOp) start(tr Transport) { o.req = tr.Irecv(o.buf, o.src, o.tag) }
func (o *recvOp) isComplete() bool   { return o.req != nil && o.req.IsComplete() }
func (o *recvOp) err() error         { return opErr(o.req) }
func (o *recvOp) cancel() {
	if o.req != nil {
		cancelReq(o.req)
	}
}

// Recv creates a receive operation.
func Recv(buf []byte, src, tag int) Op { return &recvOp{buf: buf, src: src, tag: tag} }

// recvReduceOp is a receive that folds its payload into the caller's
// accumulator the moment the payload lands — the substrate both the
// single-stage reduce tree and the relaxed allreduce are built on.
// fold runs exactly once, inside the progress poll that observes the
// completion (so it is serialized with every other schedule step), and
// only on a clean completion: an errored or cancelled receive
// contributes nothing.
type recvReduceOp struct {
	recvOp
	fold    func(in []byte)
	decided bool
	folded  bool
}

func (o *recvReduceOp) isComplete() bool {
	if o.req == nil || !o.req.IsComplete() {
		return false
	}
	if !o.decided {
		o.decided = true
		if opErr(o.req) == nil && !reqCancelled(o.req) {
			o.fold(o.buf)
			o.folded = true
		}
	}
	return true
}

// contributor marks operations that count toward a quorum stage's
// contribution tally: recvReduceOps that folded cleanly.
type contributor interface{ contributed() bool }

func (o *recvReduceOp) contributed() bool { return o.folded }

// RecvReduce creates a receive that calls fold(payload) as soon as the
// payload arrives. buf is the scratch landing buffer; fold typically
// reduces it into an accumulator shared by the stage's other
// RecvReduce ops, which requires the reduction to be commutative
// (arrival order is not deterministic).
func RecvReduce(buf []byte, src, tag int, fold func(in []byte)) Op {
	return &recvReduceOp{recvOp: recvOp{buf: buf, src: src, tag: tag}, fold: fold}
}

// localOp runs a function (a copy or reduction step) when its stage
// starts; it completes immediately. Local steps must be lightweight:
// they execute inside a progress poll.
type localOp struct {
	fn   func()
	done bool
}

func (o *localOp) start(Transport)  { o.fn(); o.done = true }
func (o *localOp) isComplete() bool { return o.done }
func (o *localOp) err() error       { return nil }
func (o *localOp) cancel()          {}

// Local creates a local computation operation.
func Local(fn func()) Op { return &localOp{fn: fn} }

// gateOp holds its stage (and therefore every later stage) until ready
// reports true. It never fails; the schedule simply does not advance.
// The MPI layer uses it as the round-lag window of the relaxed
// allreduce: a round may not issue until the comm's resolution
// frontier is close enough behind.
type gateOp struct {
	ready func() bool
	open  bool
}

func (o *gateOp) start(Transport) {}
func (o *gateOp) isComplete() bool {
	if !o.open {
		o.open = o.ready()
	}
	return o.open
}
func (o *gateOp) err() error { return nil }
func (o *gateOp) cancel()    {}

// Gate creates a pure wait operation that completes once ready reports
// true. ready is consulted from progress polls and must be cheap.
func Gate(ready func() bool) Op { return &gateOp{ready: ready} }

// QuorumStage configures a relaxed stage: instead of waiting for every
// operation, the stage settles once Need contributor operations have
// folded and the staleness bound fires. Per-operation errors do not
// abort the schedule — they are recorded, shrink the achievable
// quorum, and surface through OnSettle.
type QuorumStage struct {
	// Need is the number of contributor (RecvReduce) completions
	// required before the staleness bound may settle the stage. It is
	// capped by the number of contributors that can still possibly
	// deliver, so failed peers shrink the quorum instead of hanging it.
	Need int

	// Stale reports whether the staleness bound has expired. It is
	// consulted only while the quorum is met but stragglers remain;
	// implementations typically arm a grace deadline on first call. A
	// nil Stale waits for every operation to resolve (but still
	// tolerates per-operation errors).
	Stale func() bool

	// Abandon, when set, adopts a straggler receive's still-pending
	// request at settle time: the caller takes over its completion —
	// the MPI layer drains it into a per-comm reorder window so the
	// late payload is consumed instead of rotting in the peer's
	// unexpected queue. Returning false (or a nil Abandon) cancels the
	// request instead.
	Abandon func(src int, req Completable) bool

	// OnSettle runs exactly once when the stage settles, with the
	// number of contributions folded, the number of contributor
	// stragglers abandoned, and the first per-operation error observed
	// (nil when every resolved operation completed clean).
	OnSettle func(contributed, abandoned int, err error)

	firstErr error
}

// stage is one schedule step: a strict all-must-complete group
// (q == nil) or a relaxed quorum group.
type stage struct {
	ops []Op
	q   *QuorumStage
}

// Schedule is a sequence of stages; all operations in a stage are
// issued together, and a stage completes when every operation in it
// has (strict stages) or when its quorum settles (quorum stages). The
// schedule completes when its last stage does.
type Schedule struct {
	tr     Transport
	stages []stage
	cur    int
	issued bool
	done   core.CompletionFlag

	// err is the first strict-stage operation error observed; once set
	// the schedule aborts: remaining stages are never issued and the
	// schedule completes immediately (a collective must not hang on a
	// dead peer). Valid once IsComplete reports true.
	err error

	// abort, when set via Abort, carries an externally imposed abort
	// cause (a communicator revocation). The next Poll adopts it and
	// completes the schedule. Atomic because Abort may be called from
	// any context (an application thread revoking, a remote revoke frame
	// handler) while the owning stream polls.
	abort atomic.Pointer[error]

	// onComplete, if set, runs exactly once when the schedule finishes
	// (inside the progress poll that observes completion).
	onComplete func()
}

// NewSchedule creates an empty schedule over the transport.
func NewSchedule(tr Transport) *Schedule { return &Schedule{tr: tr} }

// AddStage appends a strict stage. Empty stages are ignored.
func (s *Schedule) AddStage(ops ...Op) {
	if len(ops) == 0 {
		return
	}
	s.stages = append(s.stages, stage{ops: ops})
}

// AddQuorum appends a relaxed stage governed by q. Empty stages are
// ignored.
func (s *Schedule) AddQuorum(q QuorumStage, ops ...Op) {
	if len(ops) == 0 {
		return
	}
	s.stages = append(s.stages, stage{ops: ops, q: &q})
}

// OnComplete registers a completion callback (used by the MPI layer to
// complete the user-visible request).
func (s *Schedule) OnComplete(fn func()) { s.onComplete = fn }

// IsComplete reports schedule completion. One atomic load.
func (s *Schedule) IsComplete() bool { return s.done.IsSet() }

// Err returns the error that aborted the schedule, or nil if it ran
// (or is still running) cleanly. Valid once IsComplete reports true.
// Quorum-stage operation errors do not abort and are reported through
// OnSettle instead.
func (s *Schedule) Err() error { return s.err }

// Abort flags the schedule to complete with err at its next poll:
// remaining stages are never issued, and the aborting poll cancels the
// interrupted stage's still-pending operations (posted receives are
// withdrawn from the matcher) so an abandoned schedule cannot leak
// posted operations into later tag matches. Safe from any context; a
// nil err or an already-completed schedule is a no-op.
func (s *Schedule) Abort(err error) {
	if err == nil || s.done.IsSet() {
		return
	}
	s.abort.CompareAndSwap(nil, &err)
}

// Poll advances the schedule: it issues the current stage if needed,
// checks its operations, and moves on as stages finish. It returns true
// if any state changed. Poll is not safe for concurrent use; the owning
// progress stream serializes it.
func (s *Schedule) Poll() bool {
	if s.done.IsSet() {
		return false
	}
	if p := s.abort.Load(); p != nil && s.err == nil {
		s.err = *p
	}
	made := false
	for s.cur < len(s.stages) {
		if s.err != nil {
			break
		}
		st := &s.stages[s.cur]
		if !s.issued {
			for _, op := range st.ops {
				op.start(s.tr)
			}
			s.issued = true
			made = true
		}
		var fin bool
		if st.q != nil {
			fin = s.pollQuorum(st)
		} else {
			fin = s.pollStrict(st)
		}
		if s.err != nil {
			break
		}
		if !fin {
			return made
		}
		s.cur++
		s.issued = false
		made = true
	}
	if s.err != nil {
		s.sweepIssued()
	}
	if s.done.Set() {
		made = true
		if s.onComplete != nil {
			s.onComplete()
		}
	}
	return made
}

// pollStrict advances a strict stage. It collects errors before
// judging completion: a stage with one failed op and one op that will
// never complete (its peer died) must abort rather than wait on the
// stragglers forever.
func (s *Schedule) pollStrict(st *stage) bool {
	done := true
	for _, op := range st.ops {
		if e := op.err(); e != nil && s.err == nil {
			s.err = e
		}
		if !op.isComplete() {
			done = false
		}
	}
	return done && s.err == nil
}

// pollQuorum advances a relaxed stage. The stage settles when every
// operation has resolved, or when the achievable quorum is met and the
// staleness bound has expired — whichever comes first. Settling gives
// up on the stragglers: their requests are adopted by the caller
// (QuorumStage.Abandon) or cancelled.
func (s *Schedule) pollQuorum(st *stage) bool {
	q := st.q
	resolved, contrib, possible := 0, 0, 0
	for _, op := range st.ops {
		c, isContrib := op.(contributor)
		if op.isComplete() {
			resolved++
			if e := op.err(); e != nil && q.firstErr == nil {
				q.firstErr = e
			}
			if isContrib && c.contributed() {
				contrib++
			}
		} else if isContrib {
			possible++
		}
	}
	all := resolved == len(st.ops)
	// The achievable quorum: contributors that already folded plus
	// those that might still. Peer failures resolve their receives
	// with errors, shrinking this below Need — the stage then settles
	// on whatever the survivors deliver instead of hanging.
	eff := q.Need
	if m := contrib + possible; m < eff {
		eff = m
	}
	if !all && (contrib < eff || q.Stale == nil || !q.Stale()) {
		return false
	}
	abandoned := 0
	for _, op := range st.ops {
		if op.isComplete() {
			continue
		}
		if _, isContrib := op.(contributor); isContrib {
			abandoned++
		}
		if r, ok := op.(*recvReduceOp); ok && q.Abandon != nil && q.Abandon(r.src, r.req) {
			continue
		}
		op.cancel()
	}
	if q.OnSettle != nil {
		q.OnSettle(contrib, abandoned, q.firstErr)
		q.OnSettle = nil
	}
	return true
}

// sweepIssued cancels the still-pending operations of the stage an
// abort interrupted. Without this, a staleness- or revocation-aborted
// schedule would strand posted receives in the matcher, where they
// poison later matches on the same (src, tag) — the ULFM failure path
// sweeps the matcher itself, but it is the only caller that does.
func (s *Schedule) sweepIssued() {
	if !s.issued || s.cur >= len(s.stages) {
		return
	}
	for _, op := range s.stages[s.cur].ops {
		if !op.isComplete() {
			op.cancel()
		}
	}
}

// Queue is the per-VCI collective subsystem: the set of in-flight
// schedules advanced by one progress hook. It implements core.Hook.
type Queue struct {
	mu     sync.Mutex
	scheds []*Schedule
	n      atomic.Int64

	// work, when bound, mirrors n into the owning stream's collective
	// work counter (core.RegisterHookCounted). Nil handles are no-ops.
	work *core.Work

	started  atomic.Uint64
	finished atomic.Uint64
}

var _ core.Hook = (*Queue)(nil)

// NewQueue returns an empty collective-schedule queue.
func NewQueue() *Queue { return &Queue{} }

// BindWork attaches the owning stream's collective work counter. Bind
// before submitting schedules.
func (q *Queue) BindWork(w *core.Work) { q.work = w }

// Submit registers a schedule for progression and gives it an initial
// poll so its first stage is issued immediately (matching MPICH, where
// the collective's first operations are issued at call time).
func (q *Queue) Submit(s *Schedule) {
	q.started.Add(1)
	if s.Poll(); s.IsComplete() {
		q.finished.Add(1)
		return
	}
	q.mu.Lock()
	q.scheds = append(q.scheds, s)
	q.mu.Unlock()
	q.n.Add(1)
	q.work.Add(1)
}

// Poll advances every in-flight schedule once. Implements core.Hook;
// an empty poll costs one atomic load.
func (q *Queue) Poll() bool {
	if q.n.Load() == 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	made := false
	kept := q.scheds[:0]
	for _, s := range q.scheds {
		if s.Poll() {
			made = true
		}
		if s.IsComplete() {
			q.n.Add(-1)
			q.work.Add(-1)
			q.finished.Add(1)
		} else {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(q.scheds); i++ {
		q.scheds[i] = nil
	}
	q.scheds = kept
	return made
}

// Pending returns the number of in-flight schedules.
func (q *Queue) Pending() int { return int(q.n.Load()) }

// Stats returns lifetime counters.
func (q *Queue) Stats() (started, finished uint64) {
	return q.started.Load(), q.finished.Load()
}
