// Package coll implements nonblocking collective operations as
// progress-driven schedules, the way MPICH structures them: a
// collective is a fixed graph of point-to-point operations and local
// computation steps, advanced by the collective-schedule hook inside
// collated MPI progress (the Collective_sched_progress entry of the
// paper's Listing 1.1).
//
// The package is transport-agnostic: algorithms build a Schedule
// against a small Transport interface, which the MPI layer implements
// on its collective communicator context.
package coll

import (
	"sync"
	"sync/atomic"

	"gompix/internal/core"
)

// Completable is a pending operation whose completion can be queried
// without side effects (an MPI request behind the scenes).
type Completable interface {
	IsComplete() bool
}

// Transport issues the point-to-point operations a schedule needs.
// Implementations route them through a communicator's collective
// context so they never match application traffic.
type Transport interface {
	// Rank is the caller's rank in the group.
	Rank() int
	// Size is the group size.
	Size() int
	// Isend starts a nonblocking raw-byte send to dst.
	Isend(data []byte, dst, tag int) Completable
	// Irecv starts a nonblocking raw-byte receive from src.
	Irecv(buf []byte, src, tag int) Completable
}

// Op is one schedule operation.
type Op interface {
	// start issues the operation.
	start(tr Transport)
	// isComplete reports whether it has finished.
	isComplete() bool
	// err reports the operation's delivery error, if it completed with
	// one (a dead peer, a downed link). Local steps never fail.
	err() error
}

// opErr extracts a delivery error from a transport request, when the
// transport exposes one (MPI requests do, via Err). A nil or
// error-less request reports nil.
func opErr(req Completable) error {
	if req == nil {
		return nil
	}
	if e, ok := req.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// sendOp sends data to dst when its stage starts.
type sendOp struct {
	data []byte
	dst  int
	tag  int
	req  Completable
}

func (o *sendOp) start(tr Transport) { o.req = tr.Isend(o.data, o.dst, o.tag) }
func (o *sendOp) isComplete() bool   { return o.req != nil && o.req.IsComplete() }
func (o *sendOp) err() error         { return opErr(o.req) }

// Send creates a send operation.
func Send(data []byte, dst, tag int) Op { return &sendOp{data: data, dst: dst, tag: tag} }

// recvOp receives into buf when its stage starts.
type recvOp struct {
	buf []byte
	src int
	tag int
	req Completable
}

func (o *recvOp) start(tr Transport) { o.req = tr.Irecv(o.buf, o.src, o.tag) }
func (o *recvOp) isComplete() bool   { return o.req != nil && o.req.IsComplete() }
func (o *recvOp) err() error         { return opErr(o.req) }

// Recv creates a receive operation.
func Recv(buf []byte, src, tag int) Op { return &recvOp{buf: buf, src: src, tag: tag} }

// localOp runs a function (a copy or reduction step) when its stage
// starts; it completes immediately. Local steps must be lightweight:
// they execute inside a progress poll.
type localOp struct {
	fn   func()
	done bool
}

func (o *localOp) start(Transport)  { o.fn(); o.done = true }
func (o *localOp) isComplete() bool { return o.done }
func (o *localOp) err() error       { return nil }

// Local creates a local computation operation.
func Local(fn func()) Op { return &localOp{fn: fn} }

// Schedule is a sequence of stages; all operations in a stage are
// issued together, and a stage completes when every operation in it
// has. The schedule completes when its last stage does.
type Schedule struct {
	tr     Transport
	stages [][]Op
	cur    int
	issued bool
	done   core.CompletionFlag

	// err is the first operation error observed; once set the schedule
	// aborts: remaining stages are never issued and the schedule
	// completes immediately (a collective must not hang on a dead
	// peer). Valid once IsComplete reports true.
	err error

	// abort, when set via Abort, carries an externally imposed abort
	// cause (a communicator revocation). The next Poll adopts it and
	// completes the schedule. Atomic because Abort may be called from
	// any context (an application thread revoking, a remote revoke frame
	// handler) while the owning stream polls.
	abort atomic.Pointer[error]

	// onComplete, if set, runs exactly once when the schedule finishes
	// (inside the progress poll that observes completion).
	onComplete func()
}

// NewSchedule creates an empty schedule over the transport.
func NewSchedule(tr Transport) *Schedule { return &Schedule{tr: tr} }

// AddStage appends a stage. Empty stages are ignored.
func (s *Schedule) AddStage(ops ...Op) {
	if len(ops) == 0 {
		return
	}
	s.stages = append(s.stages, ops)
}

// OnComplete registers a completion callback (used by the MPI layer to
// complete the user-visible request).
func (s *Schedule) OnComplete(fn func()) { s.onComplete = fn }

// IsComplete reports schedule completion. One atomic load.
func (s *Schedule) IsComplete() bool { return s.done.IsSet() }

// Err returns the error that aborted the schedule, or nil if it ran
// (or is still running) cleanly. Valid once IsComplete reports true.
func (s *Schedule) Err() error { return s.err }

// Abort flags the schedule to complete with err at its next poll:
// remaining stages are never issued, and already-issued operations are
// left to their own fate (the caller sweeps them separately — e.g. a
// revocation fails them through the matching engine). Safe from any
// context; a nil err or an already-completed schedule is a no-op.
func (s *Schedule) Abort(err error) {
	if err == nil || s.done.IsSet() {
		return
	}
	s.abort.CompareAndSwap(nil, &err)
}

// Poll advances the schedule: it issues the current stage if needed,
// checks its operations, and moves on as stages finish. It returns true
// if any state changed. Poll is not safe for concurrent use; the owning
// progress stream serializes it.
func (s *Schedule) Poll() bool {
	if s.done.IsSet() {
		return false
	}
	if p := s.abort.Load(); p != nil && s.err == nil {
		s.err = *p
	}
	made := false
	for s.cur < len(s.stages) {
		if s.err != nil {
			break
		}
		stage := s.stages[s.cur]
		if !s.issued {
			for _, op := range stage {
				op.start(s.tr)
			}
			s.issued = true
			made = true
		}
		// Collect errors before judging completion: a stage with one
		// failed op and one op that will never complete (its peer died)
		// must abort rather than wait on the stragglers forever.
		stageDone := true
		for _, op := range stage {
			if e := op.err(); e != nil && s.err == nil {
				s.err = e
			}
			if !op.isComplete() {
				stageDone = false
			}
		}
		if s.err != nil {
			break
		}
		if !stageDone {
			return made
		}
		s.cur++
		s.issued = false
		made = true
	}
	if s.done.Set() {
		made = true
		if s.onComplete != nil {
			s.onComplete()
		}
	}
	return made
}

// Queue is the per-VCI collective subsystem: the set of in-flight
// schedules advanced by one progress hook. It implements core.Hook.
type Queue struct {
	mu     sync.Mutex
	scheds []*Schedule
	n      atomic.Int64

	// work, when bound, mirrors n into the owning stream's collective
	// work counter (core.RegisterHookCounted). Nil handles are no-ops.
	work *core.Work

	started  atomic.Uint64
	finished atomic.Uint64
}

var _ core.Hook = (*Queue)(nil)

// NewQueue returns an empty collective-schedule queue.
func NewQueue() *Queue { return &Queue{} }

// BindWork attaches the owning stream's collective work counter. Bind
// before submitting schedules.
func (q *Queue) BindWork(w *core.Work) { q.work = w }

// Submit registers a schedule for progression and gives it an initial
// poll so its first stage is issued immediately (matching MPICH, where
// the collective's first operations are issued at call time).
func (q *Queue) Submit(s *Schedule) {
	q.started.Add(1)
	if s.Poll(); s.IsComplete() {
		q.finished.Add(1)
		return
	}
	q.mu.Lock()
	q.scheds = append(q.scheds, s)
	q.mu.Unlock()
	q.n.Add(1)
	q.work.Add(1)
}

// Poll advances every in-flight schedule once. Implements core.Hook;
// an empty poll costs one atomic load.
func (q *Queue) Poll() bool {
	if q.n.Load() == 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	made := false
	kept := q.scheds[:0]
	for _, s := range q.scheds {
		if s.Poll() {
			made = true
		}
		if s.IsComplete() {
			q.n.Add(-1)
			q.work.Add(-1)
			q.finished.Add(1)
		} else {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(q.scheds); i++ {
		q.scheds[i] = nil
	}
	q.scheds = kept
	return made
}

// Pending returns the number of in-flight schedules.
func (q *Queue) Pending() int { return int(q.n.Load()) }

// Stats returns lifetime counters.
func (q *Queue) Stats() (started, finished uint64) {
	return q.started.Load(), q.finished.Load()
}
