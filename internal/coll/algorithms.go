package coll

// Collective algorithms, mirroring MPICH's defaults. Every constructor
// returns an unsubmitted Schedule; the caller submits it to the VCI's
// Queue. Reduction steps receive closures so the package stays
// independent of datatype/operator details.
//
// A note on buffer snapshots: Send operations capture their payload at
// issue time (the transport packs a private copy inside Isend), so a
// stage that sends a buffer and a later stage that reduces into the
// same buffer do not race.

// Barrier builds a dissemination barrier: ceil(log2 p) rounds, round k
// exchanging zero-byte messages with ranks ±2^k.
func Barrier(tr Transport, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	for mask := 1; mask < p; mask <<= 1 {
		dst := (r + mask) % p
		src := (r - mask + p) % p
		s.AddStage(Send(nil, dst, tag), Recv(nil, src, tag))
	}
	return s
}

// Bcast builds a binomial-tree broadcast of buf from root.
func Bcast(tr Transport, buf []byte, root, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	vr := (r - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			s.AddStage(Recv(buf, src, tag))
			break
		}
		mask <<= 1
	}
	// Relay to children, highest distance first (one stage: the sends
	// are independent once our copy has arrived).
	var sends []Op
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			sends = append(sends, Send(buf, dst, tag))
		}
	}
	s.AddStage(sends...)
	return s
}

// Reduce builds a binomial-tree reduction into inout at root. Every
// rank passes its contribution in inout; on non-roots the buffer is
// scratch after completion. reduce must be commutative.
func Reduce(tr Transport, inout []byte, reduce func(inout, in []byte), root, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	vr := (r - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := ((vr &^ mask) + root) % p
			s.AddStage(Send(inout, dst, tag))
			break
		}
		src := vr | mask
		if src < p {
			srcRank := (src + root) % p
			tmp := make([]byte, len(inout))
			s.AddStage(Recv(tmp, srcRank, tag))
			s.AddStage(Local(func() { reduce(inout, tmp) }))
		}
	}
	return s
}

// AllreduceRecDbl builds the recursive-doubling allreduce (Ruefenacht
// et al. [9] in the paper; MPICH's default for short messages),
// including the MPICH fold-in steps for non-power-of-two sizes.
// inout holds the local contribution and receives the global result.
func AllreduceRecDbl(tr Transport, inout []byte, reduce func(inout, in []byte), tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	if p == 1 {
		return s
	}
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2

	newrank := r - rem
	if r < 2*rem {
		if r%2 == 0 {
			// Fold out: contribute to the odd neighbor, collect the
			// result at the end.
			s.AddStage(Send(inout, r+1, tag))
			s.AddStage(Recv(inout, r+1, tag))
			return s
		}
		tmp := make([]byte, len(inout))
		s.AddStage(Recv(tmp, r-1, tag))
		s.AddStage(Local(func() { reduce(inout, tmp) }))
		newrank = r / 2
	}

	for mask := 1; mask < pof2; mask <<= 1 {
		partnerNew := newrank ^ mask
		partner := partnerNew + rem
		if partnerNew < rem {
			partner = partnerNew*2 + 1
		}
		tmp := make([]byte, len(inout))
		s.AddStage(Send(inout, partner, tag), Recv(tmp, partner, tag))
		s.AddStage(Local(func() { reduce(inout, tmp) }))
	}

	if r < 2*rem { // r is odd here (even ranks returned above)
		s.AddStage(Send(inout, r-1, tag))
	}
	return s
}

// AllreduceRing builds the ring (reduce-scatter + allgather) allreduce
// used for long messages. elemSize aligns block boundaries so
// reductions never split an element. Requires len(inout) >= p*elemSize.
func AllreduceRing(tr Transport, inout []byte, elemSize int, reduce func(inout, in []byte), tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	if p == 1 {
		return s
	}
	n := len(inout) / elemSize
	// Block b covers elements [b*n/p, (b+1)*n/p).
	blockOf := func(b int) (lo, hi int) {
		return b * n / p * elemSize, (b + 1) * n / p * elemSize
	}
	right := (r + 1) % p
	left := (r - 1 + p) % p

	// Reduce-scatter phase: after p-1 rounds rank r owns the fully
	// reduced block (r+1) mod p.
	for k := 0; k < p-1; k++ {
		sendIdx := (r - k + p) % p
		recvIdx := (r - k - 1 + p) % p
		slo, shi := blockOf(sendIdx)
		rlo, rhi := blockOf(recvIdx)
		tmp := make([]byte, rhi-rlo)
		s.AddStage(Send(inout[slo:shi], right, tag), Recv(tmp, left, tag))
		rl := rlo
		s.AddStage(Local(func() { reduce(inout[rl:rl+len(tmp)], tmp) }))
	}
	// Allgather phase: circulate the reduced blocks.
	for k := 0; k < p-1; k++ {
		sendIdx := (r + 1 - k + p) % p
		recvIdx := (r - k + p) % p
		slo, shi := blockOf(sendIdx)
		rlo, rhi := blockOf(recvIdx)
		s.AddStage(Send(inout[slo:shi], right, tag), Recv(inout[rlo:rhi], left, tag))
	}
	return s
}

// AllgatherRing builds the ring allgather: buf holds p blocks of bs
// bytes; the caller's own block (at rank*bs) is the contribution.
func AllgatherRing(tr Transport, buf []byte, bs, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	right := (r + 1) % p
	left := (r - 1 + p) % p
	for k := 0; k < p-1; k++ {
		sendIdx := (r - k + p) % p
		recvIdx := (r - k - 1 + p) % p
		s.AddStage(
			Send(buf[sendIdx*bs:(sendIdx+1)*bs], right, tag),
			Recv(buf[recvIdx*bs:(recvIdx+1)*bs], left, tag),
		)
	}
	return s
}

// Alltoall builds the pairwise-exchange all-to-all: sendBuf and recvBuf
// hold p blocks of bs bytes each.
func Alltoall(tr Transport, sendBuf, recvBuf []byte, bs, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	s.AddStage(Local(func() {
		copy(recvBuf[r*bs:(r+1)*bs], sendBuf[r*bs:(r+1)*bs])
	}))
	for k := 1; k < p; k++ {
		dst := (r + k) % p
		src := (r - k + p) % p
		s.AddStage(
			Send(sendBuf[dst*bs:(dst+1)*bs], dst, tag),
			Recv(recvBuf[src*bs:(src+1)*bs], src, tag),
		)
	}
	return s
}

// Gather builds a linear gather of bs-byte blocks to root. sendBlock is
// this rank's contribution; recvBuf (root only) holds p blocks.
func Gather(tr Transport, sendBlock, recvBuf []byte, bs, root, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	if r != root {
		s.AddStage(Send(sendBlock, root, tag))
		return s
	}
	ops := []Op{Local(func() { copy(recvBuf[root*bs:(root+1)*bs], sendBlock) })}
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		ops = append(ops, Recv(recvBuf[src*bs:(src+1)*bs], src, tag))
	}
	s.AddStage(ops...)
	return s
}

// Scatter builds a linear scatter of bs-byte blocks from root. recvBlock
// receives this rank's block; sendBuf (root only) holds p blocks.
func Scatter(tr Transport, sendBuf, recvBlock []byte, bs, root, tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	if r != root {
		s.AddStage(Recv(recvBlock, root, tag))
		return s
	}
	ops := []Op{Local(func() { copy(recvBlock, sendBuf[root*bs:(root+1)*bs]) })}
	for dst := 0; dst < p; dst++ {
		if dst == root {
			continue
		}
		ops = append(ops, Send(sendBuf[dst*bs:(dst+1)*bs], dst, tag))
	}
	s.AddStage(ops...)
	return s
}

// Scan builds an inclusive prefix reduction: after completion, inout on
// rank r holds the reduction of contributions from ranks 0..r.
func Scan(tr Transport, inout []byte, reduce func(inout, in []byte), tag int) *Schedule {
	s := NewSchedule(tr)
	p, r := tr.Size(), tr.Rank()
	if r > 0 {
		tmp := make([]byte, len(inout))
		s.AddStage(Recv(tmp, r-1, tag))
		s.AddStage(Local(func() { reduce(inout, tmp) }))
	}
	if r < p-1 {
		s.AddStage(Send(inout, r+1, tag))
	}
	return s
}
