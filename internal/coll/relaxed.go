package coll

import "math/bits"

// The relaxed ("solo/partial") allreduce: the collective behind
// eager-SGD-style asynchronous data parallelism (Li et al.'s fflib2
// progresser). Every rank broadcasts its contribution to every peer
// and folds whichever peer contributions arrive, settling once a
// quorum is in and a staleness bound expires — stragglers are
// abandoned rather than waited for, and the result carries a bitmap
// of exactly whose data made it in. One quorum stage, no stage
// barriers: contributions fold the moment they land.
//
// The flat all-to-all exchange is deliberate. A tree or ring reaches
// the same sums with fewer messages, but every aggregation topology
// makes some rank's contribution transit another rank — one straggler
// then delays or censors data it never owned. With direct exchange a
// straggler only ever delays itself, which is the entire point of the
// relaxation.

// Bitmap is a fixed-size bit set over group ranks.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n ranks.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set marks rank i.
func (b Bitmap) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Has reports whether rank i is marked.
func (b Bitmap) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of marked ranks.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// RelaxedResult reports what a relaxed allreduce actually aggregated.
// Its fields are final when the schedule completes.
type RelaxedResult struct {
	// Contributed marks the ranks whose data is folded into the result,
	// always including the caller.
	Contributed Bitmap

	// Contributions is Contributed.Count(), maintained incrementally.
	Contributions int

	// Abandoned is the number of straggler peers given up on when the
	// stage settled (their late payloads are drained by the caller's
	// Abandon hook or their receives cancelled).
	Abandoned int

	// Err is the first per-peer delivery error observed (a dead peer's
	// ErrProcFailed, a revoked comm), nil when every resolved exchange
	// was clean. A relaxed round with Err set still completed: the
	// result holds the survivors' reduction and Contributed says whose.
	Err error
}

// RelaxedConfig tunes RelaxedAllreduce.
type RelaxedConfig struct {
	// Quorum is the minimum number of contributions — including the
	// caller's own — the round wants before settling. Clamped to
	// [1, Size]; 0 means full participation (but peer failures still
	// shrink it, see QuorumStage.Need).
	Quorum int

	// Stale is the staleness bound consulted once the quorum is met
	// while stragglers remain (see QuorumStage.Stale). Nil waits for
	// every peer to resolve.
	Stale func() bool

	// Gate, when set, holds the round's operations until it reports
	// true — the round-lag window (see Gate).
	Gate func() bool

	// Adopt, when set, takes over a straggler's still-pending receive
	// at settle time (see QuorumStage.Abandon).
	Adopt func(src int, req Completable) bool

	// OnSettle, when set, runs after the result fields are final for
	// the settling round (inside the settling progress poll).
	OnSettle func()
}

// RelaxedAllreduce builds the relaxed allreduce schedule: the caller's
// contribution in inout is sent to every peer, and arriving peer
// contributions are folded into inout via reduce (which must be
// commutative) as they land. res is populated incrementally and final
// when the schedule completes. Every round MUST use a fresh tag shared
// by all ranks for that round — abandoned rounds leave late traffic in
// flight, and only per-round tags keep it from cross-matching.
func RelaxedAllreduce(tr Transport, inout []byte, reduce func(inout, in []byte), tag int, cfg RelaxedConfig, res *RelaxedResult) *Schedule {
	s := NewSchedule(tr)
	p, me := tr.Size(), tr.Rank()
	res.Contributed = NewBitmap(p)
	res.Contributed.Set(me)
	res.Contributions = 1
	if p == 1 {
		if cfg.OnSettle != nil {
			s.AddStage(Local(cfg.OnSettle))
		}
		return s
	}
	quorum := cfg.Quorum
	if quorum <= 0 || quorum > p {
		quorum = p
	}
	if cfg.Gate != nil {
		s.AddStage(Gate(cfg.Gate))
	}
	ops := make([]Op, 0, 2*(p-1))
	// Sends first: they are issued before any fold can run inside the
	// same poll, so the snapshot each peer receives is the caller's own
	// contribution, never a partial reduction.
	for d := 0; d < p; d++ {
		if d != me {
			ops = append(ops, Send(inout, d, tag))
		}
	}
	for d := 0; d < p; d++ {
		if d == me {
			continue
		}
		src := d
		scratch := make([]byte, len(inout))
		ops = append(ops, RecvReduce(scratch, src, tag, func(in []byte) {
			reduce(inout, in)
			res.Contributed.Set(src)
			res.Contributions++
		}))
	}
	s.AddQuorum(QuorumStage{
		Need:    quorum - 1, // own contribution is already in inout
		Stale:   cfg.Stale,
		Abandon: cfg.Adopt,
		OnSettle: func(_, abandoned int, err error) {
			res.Abandoned = abandoned
			res.Err = err
			if cfg.OnSettle != nil {
				cfg.OnSettle()
			}
		},
	}, ops...)
	return s
}
