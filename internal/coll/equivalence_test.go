package coll

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllreduceVariantsEquivalence: recursive doubling and ring must
// compute exactly what a sequential reference reduction computes, for
// arbitrary inputs, group sizes, and element counts.
func TestAllreduceVariantsEquivalence(t *testing.T) {
	f := func(seed int64, rawP, rawN uint8) bool {
		p := int(rawP%8) + 1
		n := (int(rawN%6) + 1) * p // ring needs count >= p; use multiples
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]byte, p)
		want := make([]byte, n)
		for r := 0; r < p; r++ {
			inputs[r] = make([]byte, n)
			rng.Read(inputs[r])
			for j := 0; j < n; j++ {
				want[j] += inputs[r][j]
			}
		}
		for _, variant := range []string{"recdbl", "ring"} {
			if variant == "ring" && p == 1 {
				continue
			}
			trs := newMemNet(p)
			bufs := make([][]byte, p)
			ss := make([]*Schedule, p)
			for r, tr := range trs {
				bufs[r] = append([]byte(nil), inputs[r]...)
				if variant == "recdbl" {
					ss[r] = AllreduceRecDbl(tr, bufs[r], addByte, 0)
				} else {
					ss[r] = AllreduceRing(tr, bufs[r], 1, addByte, 0)
				}
			}
			drive(t, ss)
			for r := 0; r < p; r++ {
				for j := 0; j < n; j++ {
					if bufs[r][j] != want[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBcastVariantsEquivalence: binomial and scatter-allgather deliver
// identical bytes for arbitrary roots and sizes.
func TestBcastVariantsEquivalence(t *testing.T) {
	f := func(seed int64, rawP, rawRoot uint8, rawN uint16) bool {
		p := int(rawP%9) + 1
		root := int(rawRoot) % p
		n := int(rawN%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, n)
		rng.Read(data)
		for _, variant := range []string{"binomial", "scag"} {
			trs := newMemNet(p)
			bufs := make([][]byte, p)
			ss := make([]*Schedule, p)
			for r, tr := range trs {
				bufs[r] = make([]byte, n)
				if r == root {
					copy(bufs[r], data)
				}
				if variant == "binomial" {
					ss[r] = Bcast(tr, bufs[r], root, 0)
				} else {
					ss[r] = BcastScatterAllgather(tr, bufs[r], root, 0)
				}
			}
			drive(t, ss)
			for r := 0; r < p; r++ {
				for j := 0; j < n; j++ {
					if bufs[r][j] != data[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
