package coll

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBcastScatterAllgatherMatchesBinomial(t *testing.T) {
	// Property: the long-message algorithm produces the same result as
	// the binomial algorithm for every (p, root, n) combination.
	rng := rand.New(rand.NewSource(31))
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 12} {
		for root := 0; root < p; root += 2 {
			for _, n := range []int{1, 7, 64, 257, 1024} {
				data := make([]byte, n)
				rng.Read(data)
				trs := newMemNet(p)
				bufs := make([][]byte, p)
				ss := make([]*Schedule, p)
				for i, tr := range trs {
					bufs[i] = make([]byte, n)
					if i == root {
						copy(bufs[i], data)
					}
					ss[i] = BcastScatterAllgather(tr, bufs[i], root, 0)
				}
				drive(t, ss)
				for i := range bufs {
					if !bytes.Equal(bufs[i], data) {
						t.Fatalf("p=%d root=%d n=%d rank=%d mismatch", p, root, n, i)
					}
				}
			}
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		const bs = 4
		trs := newMemNet(p)
		bufs := make([][]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			bufs[i] = make([]byte, p*bs)
			for j := range bufs[i] {
				bufs[i][j] = byte(i + j)
			}
			ss[i] = ReduceScatterBlock(tr, bufs[i], bs, addByte, 0)
		}
		drive(t, ss)
		for i := 0; i < p; i++ {
			for j := 0; j < bs; j++ {
				idx := i*bs + j
				want := byte(0)
				for r := 0; r < p; r++ {
					want += byte(r + idx)
				}
				if bufs[i][idx] != want {
					t.Fatalf("p=%d rank=%d byte=%d: got %d want %d", p, i, idx, bufs[i][idx], want)
				}
			}
		}
	}
}

func TestGatherScatterBinomialMatchesLinear(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 11} {
		for root := 0; root < p; root += 3 {
			const bs = 3
			// Binomial gather.
			trs := newMemNet(p)
			recv := make([]byte, p*bs)
			ss := make([]*Schedule, p)
			for i, tr := range trs {
				block := []byte{byte(i), byte(i + 100), byte(i + 200)}
				var rb []byte
				if i == root {
					rb = recv
				}
				ss[i] = GatherBinomial(tr, block, rb, bs, root, 0)
			}
			drive(t, ss)
			for i := 0; i < p; i++ {
				if recv[i*bs] != byte(i) || recv[i*bs+1] != byte(i+100) || recv[i*bs+2] != byte(i+200) {
					t.Fatalf("gather p=%d root=%d rank=%d: %v", p, root, i, recv[i*bs:i*bs+bs])
				}
			}
			// Binomial scatter of the gathered buffer.
			out := make([][]byte, p)
			for i, tr := range trs {
				out[i] = make([]byte, bs)
				var sb []byte
				if i == root {
					sb = recv
				}
				ss[i] = ScatterBinomial(tr, sb, out[i], bs, root, 1)
			}
			drive(t, ss)
			for i := 0; i < p; i++ {
				if out[i][0] != byte(i) || out[i][2] != byte(i+200) {
					t.Fatalf("scatter p=%d root=%d rank=%d: %v", p, root, i, out[i])
				}
			}
		}
	}
}

func TestBcastScatterAllgatherTinyMessage(t *testing.T) {
	// n < p exercises empty tail blocks.
	const p = 8
	trs := newMemNet(p)
	data := []byte{1, 2, 3}
	bufs := make([][]byte, p)
	ss := make([]*Schedule, p)
	for i, tr := range trs {
		bufs[i] = make([]byte, 3)
		if i == 2 {
			copy(bufs[i], data)
		}
		ss[i] = BcastScatterAllgather(tr, bufs[i], 2, 0)
	}
	drive(t, ss)
	for i := range bufs {
		if !bytes.Equal(bufs[i], data) {
			t.Fatalf("rank %d: %v", i, bufs[i])
		}
	}
}
