package coll

import (
	"sync"
	"testing"
)

// memTransport is an in-memory loopback transport connecting n fake
// ranks for unit-testing schedules without the MPI stack.
type memNet struct {
	mu    sync.Mutex
	boxes map[key][][]byte // (src,dst,tag) -> FIFO of payloads
}

type key struct{ src, dst, tag int }

type memTransport struct {
	net  *memNet
	rank int
	size int

	// failFrom injects delivery errors: an Irecv from a listed source
	// completes immediately with that error (a dead peer's
	// ErrProcFailed, in miniature).
	failFrom map[int]error
}

type memReq struct {
	done      bool
	buf       []byte
	poll      func(*memReq)
	failErr   error
	cancelled bool
}

func (r *memReq) IsComplete() bool {
	if !r.done && r.poll != nil {
		r.poll(r)
	}
	return r.done
}

func (r *memReq) Err() error      { return r.failErr }
func (r *memReq) Cancelled() bool { return r.cancelled }

// Cancel mimics the MPI recv contract: only a still-pending request
// can be withdrawn, and it then completes as cancelled with no error.
func (r *memReq) Cancel() error {
	if !r.done {
		r.done = true
		r.cancelled = true
		r.poll = nil
	}
	return nil
}

func newMemNet(n int) []*memTransport {
	net := &memNet{boxes: make(map[key][][]byte)}
	out := make([]*memTransport, n)
	for i := range out {
		out[i] = &memTransport{net: net, rank: i, size: n}
	}
	return out
}

func (t *memTransport) Rank() int { return t.rank }
func (t *memTransport) Size() int { return t.size }

func (t *memTransport) Isend(data []byte, dst, tag int) Completable {
	cp := make([]byte, len(data))
	copy(cp, data)
	t.net.mu.Lock()
	k := key{t.rank, dst, tag}
	t.net.boxes[k] = append(t.net.boxes[k], cp)
	t.net.mu.Unlock()
	return &memReq{done: true}
}

func (t *memTransport) Irecv(buf []byte, src, tag int) Completable {
	if err, ok := t.failFrom[src]; ok {
		return &memReq{done: true, failErr: err}
	}
	r := &memReq{buf: buf}
	k := key{src, t.rank, tag}
	r.poll = func(r *memReq) {
		t.net.mu.Lock()
		defer t.net.mu.Unlock()
		q := t.net.boxes[k]
		if len(q) == 0 {
			return
		}
		copy(r.buf, q[0])
		t.net.boxes[k] = q[1:]
		r.done = true
	}
	return r
}

// drive runs all schedules to completion by round-robin polling.
func drive(t *testing.T, scheds []*Schedule) {
	t.Helper()
	for iter := 0; iter < 100000; iter++ {
		all := true
		for _, s := range scheds {
			s.Poll()
			if !s.IsComplete() {
				all = false
			}
		}
		if all {
			return
		}
	}
	t.Fatal("schedules did not converge")
}

func addByte(inout, in []byte) {
	for i := range in {
		if i < len(inout) {
			inout[i] += in[i]
		}
	}
}

func TestScheduleStagesSequential(t *testing.T) {
	trs := newMemNet(1)
	s := NewSchedule(trs[0])
	var order []int
	s.AddStage(Local(func() { order = append(order, 1) }))
	s.AddStage(Local(func() { order = append(order, 2) }), Local(func() { order = append(order, 3) }))
	s.AddStage() // empty stage ignored
	done := false
	s.OnComplete(func() { done = true })
	if s.IsComplete() {
		t.Fatal("fresh schedule complete")
	}
	s.Poll()
	if !s.IsComplete() || !done {
		t.Fatal("all-local schedule should finish in one poll")
	}
	if len(order) != 3 || order[0] != 1 {
		t.Fatalf("order %v", order)
	}
	if s.Poll() {
		t.Fatal("completed schedule should report no progress")
	}
}

func TestScheduleWaitsForRecv(t *testing.T) {
	trs := newMemNet(2)
	s0 := NewSchedule(trs[0])
	buf := make([]byte, 3)
	s0.AddStage(Recv(buf, 1, 0))
	ran := false
	s0.AddStage(Local(func() { ran = true }))
	s0.Poll()
	if s0.IsComplete() || ran {
		t.Fatal("stage 2 ran before recv completed")
	}
	trs[1].Isend([]byte{7, 8, 9}, 0, 0)
	s0.Poll()
	if !s0.IsComplete() || !ran || buf[0] != 7 {
		t.Fatalf("schedule did not finish: %v %v", ran, buf)
	}
}

func TestQueueLifecycle(t *testing.T) {
	trs := newMemNet(2)
	q := NewQueue()
	if q.Poll() || q.Pending() != 0 {
		t.Fatal("empty queue should be idle")
	}
	// An immediately-completable schedule never enters the queue.
	s := NewSchedule(trs[0])
	s.AddStage(Local(func() {}))
	q.Submit(s)
	if q.Pending() != 0 || !s.IsComplete() {
		t.Fatal("trivial schedule should complete at submit")
	}
	// One that blocks on a recv stays pending.
	buf := make([]byte, 1)
	s2 := NewSchedule(trs[0])
	s2.AddStage(Recv(buf, 1, 1))
	q.Submit(s2)
	if q.Pending() != 1 {
		t.Fatal("blocked schedule should be pending")
	}
	trs[1].Isend([]byte{5}, 0, 1)
	if !q.Poll() {
		t.Fatal("queue should make progress")
	}
	if q.Pending() != 0 || !s2.IsComplete() {
		t.Fatal("schedule should drain")
	}
	started, finished := q.Stats()
	if started != 2 || finished != 2 {
		t.Fatalf("stats %d/%d", started, finished)
	}
}

func scheds(trs []*memTransport, mk func(tr *memTransport) *Schedule) []*Schedule {
	out := make([]*Schedule, len(trs))
	for i, tr := range trs {
		out[i] = mk(tr)
	}
	return out
}

func TestBarrierCompletesOnlyTogether(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		trs := newMemNet(p)
		ss := scheds(trs, func(tr *memTransport) *Schedule { return Barrier(tr, 0) })
		drive(t, ss)
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < p; root++ {
			trs := newMemNet(p)
			bufs := make([][]byte, p)
			for i := range bufs {
				bufs[i] = make([]byte, 4)
				if i == root {
					copy(bufs[i], []byte{1, 2, 3, 4})
				}
			}
			ss := make([]*Schedule, p)
			for i, tr := range trs {
				ss[i] = Bcast(tr, bufs[i], root, 0)
			}
			drive(t, ss)
			for i, b := range bufs {
				if b[0] != 1 || b[3] != 4 {
					t.Fatalf("p=%d root=%d rank=%d got %v", p, root, i, b)
				}
			}
		}
	}
}

func TestReduceBinomial(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		for root := 0; root < p; root += 2 {
			trs := newMemNet(p)
			bufs := make([][]byte, p)
			ss := make([]*Schedule, p)
			for i, tr := range trs {
				bufs[i] = []byte{byte(i + 1), 10}
				ss[i] = Reduce(tr, bufs[i], addByte, root, 0)
			}
			drive(t, ss)
			wantA := byte(p * (p + 1) / 2)
			wantB := byte(10 * p)
			if bufs[root][0] != wantA || bufs[root][1] != wantB {
				t.Fatalf("p=%d root=%d got %v want [%d %d]", p, root, bufs[root], wantA, wantB)
			}
		}
	}
}

func TestAllreduceRecDblAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16} {
		trs := newMemNet(p)
		bufs := make([][]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			bufs[i] = []byte{byte(i + 1)}
			ss[i] = AllreduceRecDbl(tr, bufs[i], addByte, 0)
		}
		drive(t, ss)
		want := byte(p * (p + 1) / 2)
		for i, b := range bufs {
			if b[0] != want {
				t.Fatalf("p=%d rank=%d got %d want %d", p, i, b[0], want)
			}
		}
	}
}

func TestAllreduceRing(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8} {
		trs := newMemNet(p)
		const n = 16 // 16 single-byte elements
		bufs := make([][]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			bufs[i] = make([]byte, n)
			for j := range bufs[i] {
				bufs[i][j] = byte(i + j)
			}
			ss[i] = AllreduceRing(tr, bufs[i], 1, addByte, 0)
		}
		drive(t, ss)
		for j := 0; j < n; j++ {
			want := byte(0)
			for i := 0; i < p; i++ {
				want += byte(i + j)
			}
			for i := 0; i < p; i++ {
				if bufs[i][j] != want {
					t.Fatalf("p=%d rank=%d elem=%d got %d want %d", p, i, j, bufs[i][j], want)
				}
			}
		}
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		trs := newMemNet(p)
		const bs = 3
		bufs := make([][]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			bufs[i] = make([]byte, p*bs)
			for j := 0; j < bs; j++ {
				bufs[i][i*bs+j] = byte(10*i + j)
			}
			ss[i] = AllgatherRing(tr, bufs[i], bs, 0)
		}
		drive(t, ss)
		for i := 0; i < p; i++ {
			for r := 0; r < p; r++ {
				for j := 0; j < bs; j++ {
					if bufs[i][r*bs+j] != byte(10*r+j) {
						t.Fatalf("p=%d rank=%d block=%d got %v", p, i, r, bufs[i])
					}
				}
			}
		}
	}
}

func TestAlltoallPairwise(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		trs := newMemNet(p)
		const bs = 2
		recv := make([][]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			send := make([]byte, p*bs)
			for d := 0; d < p; d++ {
				send[d*bs] = byte(i)
				send[d*bs+1] = byte(d)
			}
			recv[i] = make([]byte, p*bs)
			ss[i] = Alltoall(tr, send, recv[i], bs, 0)
		}
		drive(t, ss)
		for i := 0; i < p; i++ {
			for s := 0; s < p; s++ {
				if recv[i][s*bs] != byte(s) || recv[i][s*bs+1] != byte(i) {
					t.Fatalf("p=%d rank=%d from=%d got %v", p, i, s, recv[i])
				}
			}
		}
	}
}

func TestGatherScatterLinear(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		root := p / 2
		trs := newMemNet(p)
		// Gather
		recv := make([]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			var rb []byte
			if i == root {
				rb = recv
			}
			ss[i] = Gather(tr, []byte{byte(i + 1)}, rb, 1, root, 0)
		}
		drive(t, ss)
		for i := 0; i < p; i++ {
			if recv[i] != byte(i+1) {
				t.Fatalf("gather p=%d got %v", p, recv)
			}
		}
		// Scatter
		out := make([][]byte, p)
		for i, tr := range trs {
			out[i] = make([]byte, 1)
			var sb []byte
			if i == root {
				sb = recv
			}
			ss[i] = Scatter(tr, sb, out[i], 1, root, 1)
		}
		drive(t, ss)
		for i := 0; i < p; i++ {
			if out[i][0] != byte(i+1) {
				t.Fatalf("scatter p=%d rank=%d got %v", p, i, out[i])
			}
		}
	}
}

func TestScanInclusive(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		trs := newMemNet(p)
		bufs := make([][]byte, p)
		ss := make([]*Schedule, p)
		for i, tr := range trs {
			bufs[i] = []byte{byte(i + 1)}
			ss[i] = Scan(tr, bufs[i], addByte, 0)
		}
		drive(t, ss)
		for i := 0; i < p; i++ {
			want := byte((i + 1) * (i + 2) / 2)
			if bufs[i][0] != want {
				t.Fatalf("p=%d rank=%d got %d want %d", p, i, bufs[i][0], want)
			}
		}
	}
}

func TestScheduleAbort(t *testing.T) {
	errBoom := errTest("boom")

	// Abort before the first poll: no stage ever issues, the completion
	// callback still fires, and Err carries the cause.
	trs := newMemNet(1)
	s := NewSchedule(trs[0])
	ran := false
	s.AddStage(Local(func() { ran = true }))
	done := false
	s.OnComplete(func() { done = true })
	s.Abort(errBoom)
	s.Poll()
	if !s.IsComplete() || !done {
		t.Fatal("aborted schedule did not complete")
	}
	if s.Err() != errBoom {
		t.Fatalf("Err = %v, want %v", s.Err(), errBoom)
	}
	if ran {
		t.Fatal("stage issued after abort")
	}

	// Abort mid-schedule: the blocked stage's error wins the race only
	// if the abort lands first; either way later stages never issue.
	trs = newMemNet(2)
	s = NewSchedule(trs[0])
	s.AddStage(Recv(make([]byte, 4), 1, 0)) // never satisfied
	tail := false
	s.AddStage(Local(func() { tail = true }))
	s.Poll() // issues the recv, blocks
	if s.IsComplete() {
		t.Fatal("schedule completed without a sender")
	}
	s.Abort(errBoom)
	s.Poll()
	if !s.IsComplete() || s.Err() != errBoom || tail {
		t.Fatalf("mid-schedule abort: complete=%v err=%v tail=%v", s.IsComplete(), s.Err(), tail)
	}

	// Abort(nil) is a no-op; abort after completion keeps the first
	// outcome (first writer wins, including the nil success).
	trs = newMemNet(1)
	s = NewSchedule(trs[0])
	s.AddStage(Local(func() {}))
	s.Abort(nil)
	s.Poll()
	if !s.IsComplete() || s.Err() != nil {
		t.Fatalf("Abort(nil) changed the outcome: err=%v", s.Err())
	}
	s.Abort(errBoom)
	s.Poll()
	if s.Err() != nil {
		t.Fatalf("post-completion abort rewrote Err to %v", s.Err())
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
