// Package metrics is gompix's always-compiled-in, off-by-default
// observability registry. Every progress engine, VCI, NIC, reliability
// link, and the fabric itself registers counters, gauges, and log2
// histograms here; the paper's §4 evaluation quantity — progress
// latency, the gap between an event completing and user code observing
// it — is one of the recorded histograms.
//
// Design constraints (mirrored from the paper's requirement that
// collated progress stay cheap):
//
//   - Disabled cost: every instrumented hot path guards its metric
//     updates behind Registry.On, a single atomic load (plus a nil
//     check for components that were never wired). No clock is read
//     and no histogram is touched while the registry is off.
//   - Race-clean: all instruments are lock-free atomics, safe to
//     update from any progress context concurrently; Snapshot can be
//     taken while ranks are running.
//   - Test-friendly: Snapshot/Diff turn the registry into assertable
//     counter deltas ("retransmissions > 0 when drops are injected,
//     == 0 on a clean fabric").
//
// Instruments are created through the Registry so they appear in
// snapshots; components hold the returned typed pointers and update
// them directly — the name lookup happens once, at wiring time, never
// on the hot path.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gompix/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight count) that
// additionally tracks its high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add adjusts the gauge by d and returns the new value, raising the
// high-water mark if needed.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return v
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the number of log2 buckets: bucket i counts values v
// with bits.Len64(v) == i, i.e. v == 0 lands in bucket 0 and
// v in [2^(i-1), 2^i) lands in bucket i. 64 buckets cover the full
// uint64 range (nanosecond latencies spanning ~584 years).
const histBuckets = 65

// Histogram is a lock-free log2 histogram, the concurrent counterpart
// of stats.Histogram (unit 1): bucket boundaries are powers of two of
// the recorded unit, which throughout gompix is nanoseconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one non-negative value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Mean returns the snapshot's arithmetic mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]):
// the exclusive upper boundary of the bucket containing it. Bucket i
// holds values in [2^(i-1), 2^i), so the bound is tight to a factor
// of two — enough for the qualitative latency orderings the paper's
// evaluation is built on.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum > target {
			if i == 0 {
				return 0
			}
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << 63
}

// Stats converts the snapshot into a stats.Histogram with the given
// unit, so the bench harness can render it with the same log2 tooling
// as every other gompix figure.
func (s HistSnapshot) Stats(unit float64) *stats.Histogram {
	return stats.NewHistogramFromBuckets(unit, s.Buckets[:])
}

// Registry holds a process's instruments. The zero value is not
// usable; call New. A nil *Registry is permanently disabled and safe
// to pass everywhere — all methods are nil-receiver-safe.
type Registry struct {
	on atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty, disabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Enable turns metric recording on.
func (r *Registry) Enable() { r.on.Store(true) }

// Disable turns metric recording off. Instruments keep their values.
func (r *Registry) Disable() { r.on.Store(false) }

// On reports whether recording is enabled — the single atomic load
// that guards every instrumented hot path. A nil registry is off.
func (r *Registry) On() bool { return r != nil && r.on.Load() }

// Counter returns (creating if needed) the named counter.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]int64
	GaugeMax map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot copies the current value of every instrument. Safe to call
// while ranks are running; each instrument is read atomically (the
// snapshot as a whole is not a consistent cut, which is fine for the
// monotonic counters tests assert on). A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		GaugeMax: make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
		s.GaugeMax[name] = g.Max()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.snapshot()
	}
	return s
}

// Diff returns after minus before: counter and histogram deltas, and
// after's gauge levels (gauges are instantaneous; subtracting them is
// meaningless). Instruments created between the snapshots diff against
// zero.
func Diff(before, after Snapshot) Snapshot {
	d := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		GaugeMax: make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	for name, v := range after.Counters {
		d.Counters[name] = v - before.Counters[name]
	}
	for name, v := range after.Gauges {
		d.Gauges[name] = v
		d.GaugeMax[name] = after.GaugeMax[name]
	}
	for name, h := range after.Hists {
		b := before.Hists[name]
		dh := HistSnapshot{Count: h.Count - b.Count, Sum: h.Sum - b.Sum}
		for i := range h.Buckets {
			dh.Buckets[i] = h.Buckets[i] - b.Buckets[i]
		}
		d.Hists[name] = dh
	}
	return d
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's level (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns the named histogram snapshot (zero value if absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Hists[name] }

// Total sums every counter whose name contains substr. Instrument
// names are scoped per rank/VCI ("rank0.vci0.rel.retransmits"), so
// Total("rel.retransmits") aggregates across a whole world.
func (s Snapshot) Total(substr string) uint64 {
	var sum uint64
	for name, v := range s.Counters {
		if strings.Contains(name, substr) {
			sum += v
		}
	}
	return sum
}

// String renders the snapshot as a sorted table, omitting zero-valued
// instruments so enabled-but-idle registries stay readable.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := s.Counters[name]; v != 0 {
			fmt.Fprintf(&b, "%-56s %12d\n", name, v)
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if s.Gauges[name] != 0 || s.GaugeMax[name] != 0 {
			fmt.Fprintf(&b, "%-56s %12d (max %d)\n", name, s.Gauges[name], s.GaugeMax[name])
		}
	}
	names = names[:0]
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-56s n=%d mean=%.0f p50<%d p99<%d\n",
			name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
	return b.String()
}
