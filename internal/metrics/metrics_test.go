package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.On() {
		t.Fatal("nil registry reports On")
	}
	if c := r.Counter("x"); c != nil {
		t.Fatal("nil registry returned a counter")
	}
	if g := r.Gauge("x"); g != nil {
		t.Fatal("nil registry returned a gauge")
	}
	if h := r.Histogram("x"); h != nil {
		t.Fatal("nil registry returned a histogram")
	}
}

func TestEnableDisable(t *testing.T) {
	r := New()
	if r.On() {
		t.Fatal("new registry starts enabled; want off by default")
	}
	r.Enable()
	if !r.On() {
		t.Fatal("Enable did not turn the registry on")
	}
	r.Disable()
	if r.On() {
		t.Fatal("Disable did not turn the registry off")
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if got := g.Max(); got != 7 {
		t.Fatalf("gauge max = %d, want 7", got)
	}
	g.Set(100)
	if got := g.Max(); got != 100 {
		t.Fatalf("gauge max = %d, want 100", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := new(Histogram)
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	// -5 clamps to 0, so sum = 0+1+2+3+1000.
	if got := h.Sum(); got != 1006 {
		t.Fatalf("sum = %d, want 1006", got)
	}
	s := h.snapshot()
	// Bucket index is bits.Len64(v): 0→b0, 1→b1, 2..3→b2, 1000→b10.
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[10] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets[:12])
	}
	if m := s.Mean(); m < 167 || m > 168 {
		t.Fatalf("mean = %v, want ~167.7", m)
	}
	if q := s.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %d, want 4 (upper bound of bucket 2)", q)
	}
	if q := s.Quantile(1.0); q != 1024 {
		t.Fatalf("p100 = %d, want 1024 (upper bound of bucket 10)", q)
	}
	if st := s.Stats(1); st == nil || st.Total() != 6 {
		t.Fatalf("Stats bridge lost observations: %v", st)
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := New()
	r.Counter("a").Add(10)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(8)

	before := r.Snapshot()
	r.Counter("a").Add(5)
	r.Counter("b").Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(16)
	after := r.Snapshot()

	d := Diff(before, after)
	if got := d.Counter("a"); got != 5 {
		t.Fatalf("diff counter a = %d, want 5", got)
	}
	if got := d.Counter("b"); got != 1 {
		t.Fatalf("diff counter b = %d, want 1", got)
	}
	if got := d.Gauge("g"); got != 9 {
		t.Fatalf("diff gauge g = %d, want 9 (after value)", got)
	}
	h := d.Hist("h")
	if h.Count != 1 || h.Sum != 16 {
		t.Fatalf("diff hist = count %d sum %d, want 1/16", h.Count, h.Sum)
	}
	if got := d.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestSnapshotTotal(t *testing.T) {
	r := New()
	r.Counter("rank0.rel.retransmits").Add(2)
	r.Counter("rank1.rel.retransmits").Add(3)
	r.Counter("rank1.rel.acks.sent").Add(100)
	s := r.Snapshot()
	if got := s.Total("rel.retransmits"); got != 5 {
		t.Fatalf("Total(rel.retransmits) = %d, want 5", got)
	}
	if got := s.Total("nope"); got != 0 {
		t.Fatalf("Total(nope) = %d, want 0", got)
	}
}

func TestSnapshotString(t *testing.T) {
	r := New()
	r.Counter("zero") // registered but never incremented: omitted
	r.Counter("hits").Add(2)
	r.Gauge("depth").Set(4)
	r.Histogram("lat_ns").Observe(100)
	out := r.Snapshot().String()
	if strings.Contains(out, "zero") {
		t.Errorf("zero-valued counter printed:\n%s", out)
	}
	for _, want := range []string{"hits", "depth", "lat_ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentAccess exercises registration and recording from many
// goroutines; run under -race this is the registry's thread-safety test.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	r.Enable()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Set(int64(j))
				r.Histogram("shared.hist").Observe(int64(j))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Counter("shared.counter"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Snapshot().Hist("shared.hist").Count; got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}
