// Package sched implements the MPIX Schedule proposal (Schafer et al.,
// paper §5.3): a user-constructed schedule of rounds of MPI operations
// committed into a single waitable request.
//
// The paper's argument is that such proposals need not live inside an
// MPI implementation once interoperable progress exists — and this
// package is the demonstration: it is built entirely on the public
// extension surface (MPIX Async things, generalized requests, and
// side-effect-free completion queries), with no access to MPI
// internals.
package sched

import (
	"gompix/internal/core"
	"gompix/internal/mpi"
)

// Op is one schedule operation: Start issues it and returns a request,
// or nil for a purely local step that finishes immediately.
type Op func() *mpi.Request

// Local wraps a local computation step as an Op.
func Local(fn func()) Op {
	return func() *mpi.Request {
		fn()
		return nil
	}
}

// Schedule is a sequence of rounds; all operations in a round are
// issued together and the next round starts when every one completes
// (MPIX_Schedule_create / _add_operation / _create_round).
type Schedule struct {
	proc      *mpi.Proc
	stream    *core.Stream
	rounds    [][]Op
	cur       []Op // operations accumulating into the next round
	committed bool
}

// New creates an empty schedule whose progression will be driven by
// the given stream (nil selects the NULL stream).
func New(p *mpi.Proc, stream *core.Stream) *Schedule {
	if stream == nil {
		stream = p.NullStream()
	}
	return &Schedule{proc: p, stream: stream}
}

// AddOperation appends an operation to the current round
// (MPIX_Schedule_add_operation).
func (s *Schedule) AddOperation(op Op) {
	if s.committed {
		panic("sched: AddOperation after Commit")
	}
	s.cur = append(s.cur, op)
}

// CreateRound closes the current round: subsequent operations start
// only after everything added so far completes
// (MPIX_Schedule_create_round).
func (s *Schedule) CreateRound() {
	if s.committed {
		panic("sched: CreateRound after Commit")
	}
	if len(s.cur) == 0 {
		return
	}
	s.rounds = append(s.rounds, s.cur)
	s.cur = nil
}

// runState tracks an executing schedule inside the async poll.
type runState struct {
	rounds  [][]Op
	round   int
	pending []*mpi.Request
	issued  bool
	greq    *mpi.Request
}

// Commit finalizes the schedule and registers its execution with MPI
// progress (MPIX_Schedule_commit). The returned request completes when
// the last round does; wait on it with Wait/Test or query it with
// IsComplete.
func (s *Schedule) Commit() *mpi.Request {
	if s.committed {
		panic("sched: double Commit")
	}
	s.CreateRound()
	s.committed = true
	st := &runState{rounds: s.rounds}
	st.greq = s.proc.GrequestStart(nil, nil, nil, nil)
	s.proc.AsyncStart(func(core.Thing) core.PollOutcome {
		return st.poll()
	}, nil, s.stream)
	return st.greq
}

// poll advances the schedule: it issues the current round once and
// moves on when every request in it reports complete. Completion
// queries use IsComplete only — no progress is invoked from inside the
// hook, per the MPIX Async contract.
func (st *runState) poll() core.PollOutcome {
	for st.round < len(st.rounds) {
		if !st.issued {
			for _, op := range st.rounds[st.round] {
				if req := op(); req != nil {
					st.pending = append(st.pending, req)
				}
			}
			st.issued = true
		}
		for _, req := range st.pending {
			if !req.IsComplete() {
				return core.NoProgress
			}
		}
		st.pending = st.pending[:0]
		st.issued = false
		st.round++
	}
	st.greq.GrequestComplete()
	return core.Done
}
