package sched

import (
	"testing"
	"time"

	"gompix/internal/fabric"
	"gompix/internal/mpi"
)

func runWorld(t *testing.T, procs int, fn func(*mpi.Proc)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		mpi.NewWorld(mpi.Config{
			Procs: procs,
			Fabric: fabric.Config{
				Latency:              2 * time.Microsecond,
				BandwidthBytesPerSec: 50e9,
			},
		}).Run(fn)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock")
	}
}

func TestScheduleLocalRounds(t *testing.T) {
	runWorld(t, 1, func(p *mpi.Proc) {
		s := New(p, nil)
		var order []int
		s.AddOperation(Local(func() { order = append(order, 1) }))
		s.CreateRound()
		s.AddOperation(Local(func() { order = append(order, 2) }))
		req := s.Commit()
		req.Wait()
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Errorf("order %v", order)
		}
	})
}

func TestScheduleRoundsExchange(t *testing.T) {
	// Two rounds of pingpong expressed as a schedule.
	runWorld(t, 2, func(p *mpi.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		in1 := make([]byte, 4)
		in2 := make([]byte, 4)
		s := New(p, nil)
		s.AddOperation(func() *mpi.Request { return comm.IsendBytes([]byte{byte(p.Rank()), 1, 0, 0}, peer, 1) })
		s.AddOperation(func() *mpi.Request { return comm.IrecvBytes(in1, peer, 1) })
		s.CreateRound()
		s.AddOperation(func() *mpi.Request { return comm.IsendBytes([]byte{byte(p.Rank()), 2, 0, 0}, peer, 2) })
		s.AddOperation(func() *mpi.Request { return comm.IrecvBytes(in2, peer, 2) })
		req := s.Commit()
		req.Wait()
		if in1[0] != byte(peer) || in1[1] != 1 || in2[1] != 2 {
			t.Errorf("rank %d: in1=%v in2=%v", p.Rank(), in1, in2)
		}
	})
}

func TestScheduleRoundBarrierOrdering(t *testing.T) {
	// Round 2's send must not be issued before round 1 completes: the
	// receiver receives the messages in round order on the same tag.
	runWorld(t, 2, func(p *mpi.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			got := make([]byte, 1)
			comm.RecvBytes(got, 1, 0)
			first := got[0]
			comm.RecvBytes(got, 1, 0)
			if first != 1 || got[0] != 2 {
				t.Errorf("rounds out of order: %d then %d", first, got[0])
			}
			return
		}
		s := New(p, nil)
		s.AddOperation(func() *mpi.Request { return comm.IsendBytes([]byte{1}, 0, 0) })
		s.CreateRound()
		s.AddOperation(func() *mpi.Request { return comm.IsendBytes([]byte{2}, 0, 0) })
		s.Commit().Wait()
	})
}

func TestScheduleMisusePanics(t *testing.T) {
	runWorld(t, 1, func(p *mpi.Proc) {
		s := New(p, nil)
		s.AddOperation(Local(func() {}))
		s.Commit().Wait()
		for name, fn := range map[string]func(){
			"add":    func() { s.AddOperation(Local(func() {})) },
			"round":  func() { s.CreateRound() },
			"commit": func() { s.Commit() },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s after commit should panic", name)
					}
				}()
				fn()
			}()
		}
	})
}

func TestScheduleOnDedicatedStream(t *testing.T) {
	runWorld(t, 1, func(p *mpi.Proc) {
		st := p.StreamCreate()
		s := New(p, st)
		ran := false
		s.AddOperation(Local(func() { ran = true }))
		req := s.Commit()
		// NULL-stream progress must not advance it.
		for i := 0; i < 100; i++ {
			p.Progress()
		}
		if req.IsComplete() || ran {
			t.Error("schedule ran on the wrong stream")
		}
		for !req.IsComplete() {
			p.StreamProgress(st)
		}
		if !ran {
			t.Error("schedule never ran")
		}
		p.StreamFree(st)
	})
}
