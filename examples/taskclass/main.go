// Task class: the paper's Listing 1.4 — instead of registering one
// async thing per task (whose poll cost grows linearly with the number
// of pending tasks, Fig. 7), enqueue tasks into an application-managed
// in-order queue and register a single class_poll that only inspects
// the head. Response latency stays flat no matter how deep the queue
// is (Fig. 10).
package main

import (
	"fmt"

	"gompix/mpix"
)

type task struct {
	wtimeEnd float64
	next     *task
}

type taskQueue struct {
	head, tail *task
	completed  int
	sumLatency float64
}

func (q *taskQueue) add(finish float64) {
	t := &task{wtimeEnd: finish}
	if q.head == nil {
		q.head, q.tail = t, t
	} else {
		q.tail.next = t
		q.tail = t
	}
}

// classPoll is the paper's class_poll: tasks complete in order, so only
// the head needs checking.
func classPoll(th mpix.Thing) mpix.PollOutcome {
	q := th.State().(*taskQueue)
	now := th.Engine().Wtime()
	for q.head != nil && now >= q.head.wtimeEnd {
		q.sumLatency += (now - q.head.wtimeEnd) * 1e6
		q.completed++
		q.head = q.head.next
	}
	if q.head == nil {
		return mpix.Done
	}
	return mpix.NoProgress
}

func main() {
	const interval = 0.0002 // 200us between task completions
	for _, count := range []int{10, 100, 1000} {
		w := mpix.NewWorld(mpix.Config{Procs: 1})
		w.Run(func(p *mpix.Proc) {
			q := &taskQueue{}
			base := p.Wtime() + interval
			for i := 0; i < count; i++ {
				// In-order completion times, one every 100ns.
				q.add(base + float64(i)*100e-9)
			}
			p.AsyncStart(classPoll, q, nil)
			for q.head != nil {
				p.Progress()
			}
			fmt.Printf("queue depth %5d: mean latency %7.3f us (%d tasks)\n",
				count, q.sumLatency/float64(q.completed), q.completed)
		})
	}
}
