// A domain application: 1-D Jacobi heat diffusion with halo exchange,
// the workload class the paper's introduction motivates. Each iteration
// overlaps the boundary exchange with interior computation the way the
// paper prescribes — nonblocking halo sends/receives progressed by an
// explicit MPIX_Stream_progress loop folded into the compute — and a
// periodic Allreduce computes the global residual.
package main

import (
	"fmt"
	"math"

	"gompix/internal/mpi"
	"gompix/mpix"
)

const (
	procs      = 4
	cellsEach  = 1 << 12
	iterations = 200
	checkEvery = 50
)

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: procs, ProcsPerNode: 2})
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		rank, size := p.Rank(), comm.Size()
		left, right := rank-1, rank+1

		// Local domain with one halo cell per side. A hot spot starts
		// in rank 0's interior.
		cur := make([]float64, cellsEach+2)
		next := make([]float64, cellsEach+2)
		if rank == 0 {
			cur[cellsEach/2] = 1000
		}

		leftHalo := make([]byte, 8)
		rightHalo := make([]byte, 8)
		t0 := p.Wtime()
		for it := 0; it < iterations; it++ {
			// Start the halo exchange (nonblocking).
			var reqs []*mpix.Request
			if left >= 0 {
				reqs = append(reqs,
					comm.IsendBytes(mpix.EncodeFloat64s(cur[1:2]), left, 0),
					comm.IrecvBytes(leftHalo, left, 1))
			}
			if right < size {
				reqs = append(reqs,
					comm.IsendBytes(mpix.EncodeFloat64s(cur[cellsEach:cellsEach+1]), right, 1),
					comm.IrecvBytes(rightHalo, right, 0))
			}

			// Interior update overlaps the exchange; progress is folded
			// into the compute loop every few thousand cells (the
			// paper's Fig. 5a scheme, with the poll rate under the
			// application's control).
			for i := 2; i < cellsEach; i++ {
				next[i] = 0.5*cur[i] + 0.25*(cur[i-1]+cur[i+1])
				if i%2048 == 0 {
					p.Progress()
				}
			}
			// Boundary cells need the halos: finish the exchange, then
			// decode the halo bytes in place.
			mpix.WaitAll(reqs...)
			if left >= 0 {
				cur[0] = mpix.DecodeFloat64s(leftHalo)[0]
			}
			if right < size {
				cur[cellsEach+1] = mpix.DecodeFloat64s(rightHalo)[0]
			}
			next[1] = 0.5*cur[1] + 0.25*(cur[0]+cur[2])
			next[cellsEach] = 0.5*cur[cellsEach] + 0.25*(cur[cellsEach-1]+cur[cellsEach+1])
			cur, next = next, cur

			if (it+1)%checkEvery == 0 {
				local := 0.0
				for i := 1; i <= cellsEach; i++ {
					local += cur[i] * cur[i]
				}
				in := mpix.EncodeFloat64s([]float64{local})
				out := make([]byte, 8)
				comm.Allreduce(in, out, 1, mpix.Float64, mpix.OpSum)
				if rank == 0 {
					fmt.Printf("iter %4d  global energy %10.4f\n",
						it+1, math.Sqrt(mpix.DecodeFloat64s(out)[0]))
				}
			}
		}
		if rank == 0 {
			fmt.Printf("%d ranks x %d cells, %d iterations in %.1f ms\n",
				size, cellsEach, iterations, (p.Wtime()-t0)*1e3)
		}
	})
}
