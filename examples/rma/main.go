// One-sided communication built at user level: a halo-exchange-style
// stencil update using the rma package, which implements MPI windows
// (Put/Get/Accumulate + fence) purely on top of MPIX Async, Comm.Peek,
// and RequestIsComplete — the paper's §2.7 "implement MPI subsystems in
// user space" thesis in action.
package main

import (
	"fmt"

	"gompix/internal/mpi"
	"gompix/internal/rma"
	"gompix/mpix"
)

const (
	cellsPerRank = 8
	steps        = 3
)

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 4, ProcsPerNode: 2})
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		n := comm.Size()
		// Local domain with one halo cell on each side.
		local := make([]byte, cellsPerRank+2)
		for i := 1; i <= cellsPerRank; i++ {
			local[i] = byte(p.Rank()*10 + i)
		}
		win := rma.Create(comm, local)

		left := (p.Rank() - 1 + n) % n
		right := (p.Rank() + 1) % n
		for s := 0; s < steps; s++ {
			// Push our boundary cells into the neighbors' halos —
			// one-sided: the neighbors never post receives.
			win.Put(local[1:2], left, cellsPerRank+1) // my first cell -> left's right halo
			win.Put(local[cellsPerRank:cellsPerRank+1], right, 0)
			if err := win.Fence(); err != nil {
				panic(err)
			}
			// A toy relaxation using the halos.
			next := make([]byte, len(local))
			copy(next, local)
			for i := 1; i <= cellsPerRank; i++ {
				next[i] = (local[i-1] + local[i] + local[i+1]) / 3
			}
			copy(local, next)
			if err := win.Fence(); err != nil {
				panic(err)
			}
		}
		win.Free()
		if p.Rank() == 0 {
			fmt.Printf("rank 0 domain after %d halo-exchange steps: %v\n", steps, local[1:cellsPerRank+1])
			fmt.Println("one-sided halo exchange completed via user-level RMA")
		}
	})
}
