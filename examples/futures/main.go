// Event-driven MPI with futures: Then-chains resolved from inside MPI
// progress — the task-based/event-driven integration the paper
// motivates in §1. A worker rank builds a processing pipeline
// (receive → transform → reply) without ever blocking in MPI_Wait; the
// whole pipeline advances as a side effect of progress.
package main

import (
	"fmt"

	"gompix/internal/future"
	"gompix/internal/mpi"
	"gompix/mpix"
)

const jobs = 5

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 2})
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			// Client: submit jobs, collect squared replies.
			for i := 1; i <= jobs; i++ {
				comm.SendBytes([]byte{byte(i)}, 1, 0)
			}
			for i := 1; i <= jobs; i++ {
				buf := make([]byte, 1)
				comm.RecvBytes(buf, 1, 1)
				fmt.Printf("job %d -> %d\n", i, buf[0])
			}
			return
		}

		// Worker: an event pipeline per job, all in flight at once.
		e := future.NewExecutor(p, nil)
		var pipelines []*future.Future
		bufs := make([][]byte, jobs)
		for i := 0; i < jobs; i++ {
			i := i
			bufs[i] = make([]byte, 1)
			f := e.FromRequest(comm.IrecvBytes(bufs[i], 0, 0)).
				Then(func(v any, err error) (any, error) {
					x := int(bufs[i][0])
					return []byte{byte(x * x)}, err
				}).
				Then(func(v any, err error) (any, error) {
					return e.FromRequest(comm.IsendBytes(v.([]byte), 0, 1)), err
				})
			pipelines = append(pipelines, f)
		}
		// One wait loop drives every pipeline to completion.
		all := future.WhenAll(pipelines...)
		if _, err := e.Await(all); err != nil {
			panic(err)
		}
		// The inner send futures complete via the same loop.
		v, _ := all.Value()
		for _, inner := range v.([]any) {
			e.Await(inner.(*future.Future))
		}
		fmt.Println("worker: all pipelines drained through MPI progress")
	})
}
