// GPU-aware communication pipeline: a simulated accelerator's DMA
// queue (the CUDA-stream analogue) is registered as an MPIX Async
// thing, so a single MPI progress loop retires device copies, chains
// the dependent MPI sends, and completes the receives — the collated
// multi-subsystem progress of the paper's §2.6, with the device queue
// playing the role of MPICH's GPU memcpy engine.
package main

import (
	"fmt"
	"time"

	"gompix/internal/mpi"
	"gompix/internal/offload"
	"gompix/mpix"
)

const (
	chunks    = 4
	chunkSize = 32 * 1024
)

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 2, ProcsPerNode: 1})
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		dev := offload.NewDevice(p.Engine().Clock(), offload.Config{
			CopyBytesPerSec: 10e9,
			LaunchOverhead:  20 * time.Microsecond,
		})
		q := dev.NewQueue()
		p.AsyncStart(q.AsyncPoll(nil), nil, nil)

		if p.Rank() == 0 {
			// Producer: for each chunk, "kernel" computes on device,
			// DMA copies to host, MPI sends — all stages overlap
			// across chunks, driven by one progress loop.
			device := make([][]byte, chunks)
			host := make([][]byte, chunks)
			copies := make([]*offload.Op, chunks)
			sends := make([]*mpix.Request, chunks)
			t0 := p.Wtime()
			for i := 0; i < chunks; i++ {
				i := i
				device[i] = make([]byte, chunkSize)
				host[i] = make([]byte, chunkSize)
				q.EnqueueKernel(50*time.Microsecond, func() {
					for j := range device[i] {
						device[i][j] = byte(i + j)
					}
				})
				copies[i] = q.EnqueueCopy(host[i], device[i])
			}
			// Event loop: as each D2H copy retires, launch its send.
			launched := 0
			for launched < chunks {
				p.Progress()
				for i := 0; i < chunks; i++ {
					if sends[i] == nil && copies[i].IsComplete() {
						sends[i] = comm.IsendBytes(host[i], 1, i)
						launched++
					}
				}
			}
			for _, s := range sends {
				s.Wait()
			}
			fmt.Printf("producer: %d chunks computed, copied, and sent in %.3f ms\n",
				chunks, (p.Wtime()-t0)*1e3)
			return
		}

		// Consumer: plain MPI receives.
		for i := 0; i < chunks; i++ {
			buf := make([]byte, chunkSize)
			st := comm.RecvBytes(buf, 0, i)
			if buf[0] != byte(i) || st.Bytes != chunkSize {
				panic(fmt.Sprintf("chunk %d corrupt", i))
			}
		}
		fmt.Println("consumer: all chunks received intact")
	})
}
