// Generalized requests + MPIX Async: the paper's Listing 1.7 — MPIX
// Async provides the progression mechanism that generalized requests
// have always lacked (§5.2), and the generalized request provides the
// MPI_Wait-able handle. Together they let an application extend MPI
// with fully first-class asynchronous operations.
package main

import (
	"fmt"

	"gompix/mpix"
)

type dummyState struct {
	complete float64
	greq     *mpix.Request
}

func dummyPoll(th mpix.Thing) mpix.PollOutcome {
	st := th.State().(*dummyState)
	if th.Engine().Wtime() >= st.complete {
		// The async task finished: complete the generalized request so
		// whoever is blocked in Wait wakes up.
		st.greq.GrequestComplete()
		return mpix.Done
	}
	return mpix.NoProgress
}

func main() {
	const interval = 0.002 // 2ms simulated offloaded work
	w := mpix.NewWorld(mpix.Config{Procs: 1})
	w.Run(func(p *mpix.Proc) {
		greq := p.GrequestStart(
			func(extra any, s *mpix.Status) error { s.Bytes = 42; return nil },
			func(extra any) error { fmt.Println("free_fn called"); return nil },
			func(extra any, completed bool) error { return nil },
			nil,
		)
		p.AsyncStart(dummyPoll, &dummyState{
			complete: p.Wtime() + interval,
			greq:     greq,
		}, nil)

		t0 := p.Wtime()
		// MPI_Wait on the generalized request replaces the manual
		// wait-progress loop: Wait drives MPI progress, MPI progress
		// polls our async thing, the thing completes the grequest.
		st := greq.Wait()
		fmt.Printf("generalized request completed after %.3f ms (status bytes=%d)\n",
			(p.Wtime()-t0)*1e3, st.Bytes)
		if err := greq.Free(); err != nil {
			fmt.Println("free error:", err)
		}
	})
}
