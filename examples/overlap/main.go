// Computation/communication overlap: the paper's §2.3-§2.4 (Figs. 4-5)
// as a runnable demonstration. Rank 0 receives a large rendezvous
// message while computing; the progress scheme decides how much of the
// transfer hides behind the computation:
//
//   - no-progress: the rendezvous handshake stalls until the final
//     wait, so compute and transfer serialize (Fig. 4c).
//   - interspersed MPI_Test: progress happens at poll points (Fig. 5a).
//   - explicit progress thread on the NULL stream (Fig. 5b), built
//     with MPIX_Stream_progress — no request handles needed.
package main

import (
	"fmt"
	"time"

	"gompix/internal/timing"
	"gompix/mpix"
)

const (
	msgBytes    = 1 << 20
	computeMS   = 2
	repetitions = 5
)

// compute busy-spins in slices, optionally invoking probe between them.
func compute(total time.Duration, probe func()) {
	const slices = 100
	for i := 0; i < slices; i++ {
		timing.BusySpin(total / slices)
		if probe != nil {
			probe()
		}
	}
}

func measure(p *mpix.Proc, scheme string) float64 {
	comm := p.CommWorld()
	buf := make([]byte, msgBytes)
	var total float64
	for it := 0; it < repetitions; it++ {
		comm.Barrier()
		if p.Rank() == 1 {
			comm.IsendBytes(buf, 0, it).Wait()
			comm.Barrier()
			continue
		}
		t0 := p.Wtime()
		req := comm.IrecvBytes(buf, 1, it)
		switch scheme {
		case "no-progress":
			compute(computeMS*time.Millisecond, nil)
		case "interspersed-test":
			compute(computeMS*time.Millisecond, func() { req.Test() })
		case "progress-thread":
			stop := p.ProgressThread(nil)
			compute(computeMS*time.Millisecond, nil)
			stop()
		}
		req.Wait()
		total += (p.Wtime() - t0) * 1e3
		comm.Barrier()
	}
	return total / repetitions
}

func main() {
	w := mpix.NewWorld(mpix.Config{
		Procs:        2,
		ProcsPerNode: 1,
		// Slow the fabric so the 1 MiB transfer takes about as long as
		// the compute phase — the regime where overlap matters.
		Fabric: mpix.FabricConfig{
			BandwidthBytesPerSec: float64(msgBytes) / (computeMS * 1e-3),
		},
	})
	w.Run(func(p *mpix.Proc) {
		fmt0 := func(format string, args ...any) {
			if p.Rank() == 0 {
				fmt.Printf(format, args...)
			}
		}
		fmt0("1 MiB rendezvous receive overlapping %d ms of computation:\n", computeMS)
		for _, scheme := range []string{"no-progress", "interspersed-test", "progress-thread"} {
			ms := measure(p, scheme)
			fmt0("  %-18s total %7.3f ms\n", scheme, ms)
		}
		fmt0("(lower is better; the difference to no-progress is recovered overlap)\n")
	})
}
