// Request completion callbacks: the paper's Listing 1.6 — an
// event-driven layer built from MPIX Async and
// MPIX_Request_is_complete. A single progress hook scans an array of
// outstanding receive requests with the side-effect-free completion
// query and fires per-request callbacks, without any thread ever
// blocking in MPI_Wait.
package main

import (
	"fmt"

	"gompix/mpix"
)

const numRequests = 8

type watcher struct {
	requests []*mpix.Request
	onDone   func(i int, s mpix.Status)
}

// poll is the paper's dummy_poll over request_array: IsComplete is an
// atomic load with no side effects, so scanning is cheap and never
// interferes with the native progress that completes the requests.
func poll(th mpix.Thing) mpix.PollOutcome {
	w := th.State().(*watcher)
	pending := 0
	for i, req := range w.requests {
		switch {
		case req == nil: // already handled
		case req.IsComplete():
			w.onDone(i, req.Status())
			w.requests[i] = nil
		default:
			pending++
		}
	}
	if pending == 0 {
		return mpix.Done
	}
	return mpix.NoProgress
}

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 2})
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 1 {
			for i := 0; i < numRequests; i++ {
				comm.SendBytes([]byte(fmt.Sprintf("event-%d", i)), 0, i)
			}
			return
		}
		bufs := make([][]byte, numRequests)
		wt := &watcher{requests: make([]*mpix.Request, numRequests)}
		for i := range wt.requests {
			bufs[i] = make([]byte, 16)
			wt.requests[i] = comm.IrecvBytes(bufs[i], 1, i)
		}
		completed := 0
		wt.onDone = func(i int, s mpix.Status) {
			completed++
			fmt.Printf("callback: request %d completed, %d bytes from rank %d: %q\n",
				i, s.Bytes, s.Source, bufs[i][:s.Bytes])
		}
		p.AsyncStart(poll, wt, nil)
		for completed < numRequests {
			p.Progress()
		}
		fmt.Printf("all %d completion events delivered\n", completed)
	})
}
