// Concurrent progress streams: the paper's Listing 1.5 — when several
// threads need their own progress, give each one its own MPIX stream.
// Progress on disjoint streams shares no state and no lock, so latency
// stays flat as threads are added (Fig. 11), in contrast with every
// thread progressing the shared NULL stream (Fig. 9).
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gompix/mpix"
)

const (
	numThreads   = 4
	numTasks     = 10
	taskDuration = 0.0005
)

type dummyState struct {
	finish  float64
	counter *atomic.Int64
	sum     *float64 // owned by one thread; no lock needed
}

func dummyPoll(th mpix.Thing) mpix.PollOutcome {
	st := th.State().(*dummyState)
	now := th.Engine().Wtime()
	if now >= st.finish {
		*st.sum += (now - st.finish) * 1e6
		st.counter.Add(-1)
		return mpix.Done
	}
	return mpix.NoProgress
}

func run(p *mpix.Proc, shared bool) float64 {
	streams := make([]*mpix.Stream, numThreads)
	for i := range streams {
		if shared {
			streams[i] = nil // MPIX_STREAM_NULL for everyone
		} else {
			streams[i] = p.StreamCreate(mpix.WithName(fmt.Sprintf("thread-%d", i)))
		}
	}
	sums := make([]float64, numThreads)
	var wg sync.WaitGroup
	for t := 0; t < numThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			var counter atomic.Int64
			counter.Store(numTasks)
			for i := 0; i < numTasks; i++ {
				st := &dummyState{
					finish:  p.Wtime() + taskDuration + float64(i)*1e-6,
					counter: &counter,
					sum:     &sums[t],
				}
				p.AsyncStart(dummyPoll, st, streams[t])
			}
			for counter.Load() > 0 {
				if streams[t] == nil {
					p.Progress()
				} else {
					p.StreamProgress(streams[t])
				}
			}
		}(t)
	}
	wg.Wait()
	if !shared {
		for _, s := range streams {
			p.StreamFree(s)
		}
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total / float64(numThreads*numTasks)
}

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 1})
	w.Run(func(p *mpix.Proc) {
		sharedLat := run(p, true)
		perStream := run(p, false)
		fmt.Printf("%d threads x %d tasks\n", numThreads, numTasks)
		fmt.Printf("  shared NULL stream : %7.3f us mean latency (lock contention)\n", sharedLat)
		fmt.Printf("  per-thread streams : %7.3f us mean latency\n", perStream)
	})
}
