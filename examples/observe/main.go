// Observe: wire the metrics registry and trace recorder into a small
// two-rank job, then print what the runtime saw — progress calls,
// match-queue activity, reliability-layer recovery on a lossy fabric,
// and the completion-to-observation latency histogram that is the
// paper's central quantity. Pass -trace-out FILE to also write a
// Chrome trace_event file (open it at https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gompix/mpix"
)

func main() {
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file")
	flag.Parse()

	reg := mpix.NewMetrics()
	reg.Enable()
	rec := mpix.NewTraceRecorder()

	w := mpix.NewWorld(mpix.Config{
		Procs:        2,
		ProcsPerNode: 1,
		Reliable:     true,
		Fabric: mpix.FabricConfig{
			Latency:              2 * time.Microsecond,
			BandwidthBytesPerSec: 50e9,
			Faults:               mpix.FaultConfig{DropProb: 0.05, Seed: 7},
		},
		Metrics: reg,
		Tracer:  rec.Sink(),
	})
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		eager := make([]byte, 4*1024)
		rndv := make([]byte, 128*1024) // above the rendezvous threshold
		for i := 0; i < 10; i++ {
			if p.Rank() == 0 {
				comm.SendBytes(eager, peer, 0)
				comm.RecvBytes(rndv, peer, 1)
			} else {
				comm.RecvBytes(eager, peer, 0)
				comm.SendBytes(rndv, peer, 1)
			}
		}
	})
	w.Close()

	snap := reg.Snapshot()
	fmt.Println("what the runtime saw (selected counters):")
	var names []string
	for name := range snap.Counters {
		for _, want := range []string{"progress.calls", "retransmits", "dups.dropped", "faults.", "match.", "req.observed"} {
			if strings.Contains(name, want) {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-45s %8d\n", name, snap.Counters[name])
	}

	fmt.Println("\ncompletion-to-observation latency (the paper's progress latency):")
	for _, rank := range []int{0, 1} {
		h := snap.Hist(fmt.Sprintf("rank%d.vci0.req.progress_latency_ns", rank))
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  rank %d: %4d observations, mean %8.1f ns, p50 <= %d ns, p99 <= %d ns\n",
			rank, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := mpix.WriteChromeTrace(f, rec.Events()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %d trace events to %s\n", len(rec.Events()), *traceOut)
	}
}
