// contserver: a callback-driven echo server sustaining ten thousand
// concurrent request chains on a single progress loop — the
// continuation answer to goroutine-per-request servers.
//
// Rank 0 arms 10,000 independent recv→send echo chains; every chain
// re-arms itself from its own completion callbacks (MPIX Continue), so
// the server's whole control flow lives inside the progress engine:
// one goroutine, zero blocked waiters, 10,000 operations in flight.
// Rank 1 is the mirror-image client, driving the same chains with
// send→recv round trips, also entirely from callbacks.
//
// Contrast with examples/reqcallback, which polls an IsComplete scan
// from an async thing: here no code ever scans — each completion is
// delivered exactly once to its callback by the stream's run-queue.
package main

import (
	"fmt"
	"runtime"

	"gompix/mpix"
)

const (
	chains = 10000 // concurrent request chains per direction
	rounds = 2     // round trips per chain
)

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 2})
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		cr := p.ContinueInit()

		// All counters are touched only by this rank's single
		// goroutine: callbacks execute inside p.Progress() below.
		var completed, inflight, maxInflight, goroutinePeak int
		post := func() {
			inflight++
			if inflight > maxInflight {
				maxInflight = inflight
				if g := runtime.NumGoroutine(); g > goroutinePeak {
					goroutinePeak = g
				}
			}
		}

		if p.Rank() == 0 {
			// Server: every chain is Irecv → (callback) Isend echo →
			// (callback) re-arm. Nothing blocks; nothing polls.
			for c := 0; c < chains; c++ {
				c := c
				buf := make([]byte, 8)
				round := 0
				var arm func()
				arm = func() {
					post()
					cr.Continue(comm.IrecvBytes(buf, peer, c), func(s mpix.Status) {
						inflight--
						if s.Err != nil {
							panic(s.Err)
						}
						post()
						cr.Continue(comm.IsendBytes(buf, peer, c), func(s mpix.Status) {
							inflight--
							if s.Err != nil {
								panic(s.Err)
							}
							round++
							if round < rounds {
								arm()
							} else {
								completed++
							}
						})
					})
				}
				arm()
			}
		} else {
			// Client: the same shape with the verbs swapped — Isend
			// request → (callback) Irecv echo → (callback) next round.
			for c := 0; c < chains; c++ {
				c := c
				msg := []byte{byte(c), byte(c >> 8), 2, 3, 4, 5, 6, 7}
				echo := make([]byte, 8)
				round := 0
				var arm func()
				arm = func() {
					post()
					cr.Continue(comm.IsendBytes(msg, peer, c), func(s mpix.Status) {
						inflight--
						if s.Err != nil {
							panic(s.Err)
						}
					})
					post()
					cr.Continue(comm.IrecvBytes(echo, peer, c), func(s mpix.Status) {
						inflight--
						if s.Err != nil {
							panic(s.Err)
						}
						if echo[0] != byte(c) || echo[1] != byte(c>>8) {
							panic(fmt.Sprintf("chain %d: echo corrupted", c))
						}
						round++
						if round < rounds {
							arm()
						} else {
							completed++
						}
					})
				}
				arm()
			}
		}

		armed := cr.NPending()
		cr.Start()
		// The entire server/client runs inside this one progress loop.
		for completed < chains {
			if !p.Progress() {
				runtime.Gosched()
			}
		}
		cr.Wait()
		fmt.Printf("rank %d: %d chains x %d rounds done; %d continuations armed at start, max %d ops in flight, %d goroutines at peak\n",
			p.Rank(), completed, rounds, armed, maxInflight, goroutinePeak)
	})
}
