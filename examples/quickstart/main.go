// Quickstart: the paper's Listings 1.2/1.3 — launch dummy asynchronous
// tasks as MPIX Async things, wait for them with an explicit
// MPIX_Stream_progress loop, and report the measured progress latency
// (elapsed time between each task's completion and the moment the
// progress engine observed it).
package main

import (
	"fmt"
	"sync/atomic"

	"gompix/mpix"
)

const (
	taskDuration = 0.001 // seconds (the paper uses 1.0s)
	numTasks     = 10
)

type dummyState struct {
	finish  float64
	counter *atomic.Int64
	latency *float64
}

// dummyPoll mirrors the paper's dummy_poll: the task "completes" when
// the wall clock passes its preset finish time.
func dummyPoll(th mpix.Thing) mpix.PollOutcome {
	st := th.State().(*dummyState)
	now := th.Engine().Wtime()
	if now >= st.finish {
		*st.latency = (now - st.finish) * 1e6
		st.counter.Add(-1)
		return mpix.Done
	}
	return mpix.NoProgress
}

func main() {
	w := mpix.NewWorld(mpix.Config{Procs: 1})
	w.Run(func(p *mpix.Proc) {
		var counter atomic.Int64
		counter.Store(numTasks)
		latencies := make([]float64, numTasks)
		for i := 0; i < numTasks; i++ {
			st := &dummyState{
				finish:  p.Wtime() + taskDuration,
				counter: &counter,
				latency: &latencies[i],
			}
			p.AsyncStart(dummyPoll, st, nil) // nil = MPIX_STREAM_NULL
		}

		// The wait block of Listing 1.3:
		//   while (counter > 0) MPIX_Stream_progress(MPIX_STREAM_NULL);
		for counter.Load() > 0 {
			p.Progress()
		}

		var sum float64
		for i, l := range latencies {
			fmt.Printf("task %2d: progress latency %8.3f us\n", i, l)
			sum += l
		}
		fmt.Printf("mean: %.3f us over %d tasks\n", sum/numTasks, numTasks)
	})
}
