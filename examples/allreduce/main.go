// User-level allreduce: the paper's Listing 1.8 and Figure 13 — a
// recursive-doubling allreduce implemented entirely in "user space"
// with the extension APIs, compared against the library's native
// nonblocking Iallreduce. The custom version exploits its restrictions
// (int32 + sum, in-place, power-of-two ranks) to skip the generic
// machinery, which is exactly the freedom the paper argues user-level
// collectives should have.
package main

import (
	"fmt"
	"runtime"

	"gompix/mpix"
)

const myAllreduceTag = 0x7777

type myAllreduce struct {
	buf   []int32
	comm  *mpix.Comm
	rank  int
	size  int
	mask  int
	reqs  [2]*mpix.Request
	done  *bool
	wire  []byte
	rwire []byte
}

// poll is my_allreduce_poll from Listing 1.8: each round exchanges
// buffers with rank^mask, folds the received values in, and doubles the
// mask. Request completion is observed with the side-effect-free
// IsComplete query, never by calling progress recursively.
func poll(th mpix.Thing) mpix.PollOutcome {
	p := th.State().(*myAllreduce)
	for i := 0; i < 2; i++ {
		if p.reqs[i] != nil {
			if !p.reqs[i].IsComplete() {
				return mpix.NoProgress
			}
			p.reqs[i] = nil
		}
	}
	if p.mask > 1 {
		for i, v := range mpix.DecodeInt32s(p.rwire) {
			p.buf[i] += v
		}
	}
	if p.mask == p.size {
		*p.done = true
		return mpix.Done
	}
	dst := p.rank ^ p.mask
	copy(p.wire, mpix.EncodeInt32s(p.buf))
	p.reqs[0] = p.comm.IrecvBytes(p.rwire, dst, myAllreduceTag)
	p.reqs[1] = p.comm.IsendBytes(p.wire, dst, myAllreduceTag)
	p.mask <<= 1
	return mpix.Progressed
}

// MyAllreduce reduces buf in place across the communicator.
func MyAllreduce(comm *mpix.Comm, buf []int32) {
	if comm.Size() == 1 {
		return
	}
	done := false
	st := &myAllreduce{
		buf: buf, comm: comm,
		rank: comm.Rank(), size: comm.Size(), mask: 1,
		done:  &done,
		wire:  make([]byte, 4*len(buf)),
		rwire: make([]byte, 4*len(buf)),
	}
	comm.Proc().AsyncStart(poll, st, comm.Stream())
	for !done {
		if !comm.Proc().StreamProgress(comm.Stream()) {
			runtime.Gosched()
		}
	}
}

func main() {
	const procs = 8
	const iters = 100
	w := mpix.NewWorld(mpix.Config{
		Procs:        procs,
		ProcsPerNode: 1, // one rank per node, like the paper's Fig. 13 runs
	})
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		buf := []int32{int32(p.Rank() + 1)}
		MyAllreduce(comm, buf)
		want := int32(procs * (procs + 1) / 2)
		if buf[0] != want {
			panic(fmt.Sprintf("rank %d: got %d want %d", p.Rank(), buf[0], want))
		}

		// Timed comparison, reported by rank 0.
		comm.Barrier()
		t0 := p.Wtime()
		for i := 0; i < iters; i++ {
			buf[0] = int32(p.Rank())
			MyAllreduce(comm, buf)
		}
		userUS := (p.Wtime() - t0) / iters * 1e6

		comm.Barrier()
		wire := make([]byte, 4)
		t0 = p.Wtime()
		for i := 0; i < iters; i++ {
			copy(wire, mpix.EncodeInt32s([]int32{int32(p.Rank())}))
			comm.Iallreduce(nil, wire, 1, mpix.Int32, mpix.OpSum).Wait()
		}
		nativeUS := (p.Wtime() - t0) / iters * 1e6

		if p.Rank() == 0 {
			fmt.Printf("%d procs, single int32 allreduce over %d iterations:\n", procs, iters)
			fmt.Printf("  user-level recursive doubling (MPIX Async): %8.3f us\n", userUS)
			fmt.Printf("  native Iallreduce:                          %8.3f us\n", nativeUS)
		}
	})
}
