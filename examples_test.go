package gompix

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds and runs every program under
// examples/ to completion. Every example is written to finish in well
// under a second of real work; a hang or non-zero exit is a bug in the
// runtime the example exercises, not in the example.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := e.Name()
		mains, _ := filepath.Glob(filepath.Join("examples", dir, "*.go"))
		if len(mains) == 0 {
			continue
		}
		ran++
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), dir)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", dir))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}

			done := make(chan error, 1)
			cmd := exec.Command(bin)
			cmd.Stdout = nil
			cmd.Stderr = nil
			if err := cmd.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example exited with error: %v", err)
				}
			case <-time.After(30 * time.Second):
				cmd.Process.Kill()
				t.Fatal("example did not finish within 30s")
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found under examples/")
	}
}
