// Package gompix is a pure-Go reproduction of "MPI Progress For All"
// (Zhou, Latham, Raffenetti, Guo, Thakur — SC 2024): explicit,
// interoperable MPI progress (MPIX streams, MPIX async things, and
// side-effect-free request completion queries) on a simulated MPI
// substrate.
//
// The public API lives in the mpix subpackage; see README.md and
// DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-measured results. The benchmarks in bench_test.go
// regenerate every figure of the paper's evaluation (run
// cmd/progressbench for the full tables).
package gompix
