//go:build unix

package main

import (
	"os/exec"
	"syscall"
)

// setProcGroup places the child in its own process group, so a kill
// can take out the whole subtree — under "go run" the process we
// start is the toolchain wrapper, and the compiled binary is a
// grandchild that would otherwise survive its parent and sit on its
// TCP port as an orphan.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProc forcefully terminates the child's process group (falling
// back to the process itself if the group signal fails, e.g. the
// group is already gone).
func killProc(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		cmd.Process.Kill()
	}
}
