//go:build unix

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildLauncher compiles mpixrun once per test binary.
func buildLauncher(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mpixrun")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building mpixrun: %v\n%s", err, out)
	}
	return bin
}

// TestCrashKillsJobPromptly crashes rank 1 of a 3-rank job and checks
// the launcher's failure contract: a non-zero exit well before the
// surviving ranks' 30s sleep would end, and no orphaned grandchildren
// (the ranks run under "go run", so the real workers are grandchildren
// that only die because the launcher signals the process group).
func TestCrashKillsJobPromptly(t *testing.T) {
	bin := buildLauncher(t)
	piddir := t.TempDir()
	cmd := exec.Command(bin, "-n", "3", "./testdata/behave", "crash")
	cmd.Env = append(os.Environ(), "MPIXTEST_PIDDIR="+piddir)
	start := time.Now()
	out, err := cmd.CombinedOutput()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("mpixrun exited 0 despite a crashed rank; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("mpixrun error = %v, want non-zero exit; output:\n%s", err, out)
	}
	// The survivors sleep 30s; anything close to that means the
	// launcher waited on them instead of killing the job. The budget
	// covers "go run" compiles plus the crash delay, nothing more.
	if elapsed > 15*time.Second {
		t.Fatalf("teardown took %v — the launcher waited for survivors instead of killing them", elapsed)
	}
	if !strings.Contains(string(out), "rank 1") {
		t.Errorf("output does not attribute the failure to rank 1:\n%s", out)
	}

	// Every recorded worker PID must be gone shortly after exit.
	ents, err := os.ReadDir(piddir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no pid files recorded (err=%v)", err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(piddir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for syscall.Kill(pid, 0) == nil {
			if time.Now().After(deadline) {
				t.Errorf("%s: pid %d still alive after job exit (orphan)", e.Name(), pid)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestOnFailureContinue runs the full ULFM drill under the launcher:
// a 4-rank job loses rank 1 mid-allreduce with -on-failure=continue.
// The launcher must NOT kill the survivors; its roster update drives
// their failure detectors, each survivor recovers (Revoke, Agree,
// Shrink) and proves the 3-rank survivor communicator, and the
// launcher exits non-zero with the failed-rank summary. Any survivor
// that misses an expectation exits 4 and shows up as an extra failed
// rank, failing the assertions below.
func TestOnFailureContinue(t *testing.T) {
	bin := buildLauncher(t)
	// The ranks run race-instrumented: the drill spans the revoke flood,
	// the agreement exchange, and the shrink — all concurrency-heavy.
	behave := filepath.Join(t.TempDir(), "behave")
	if out, err := exec.Command("go", "build", "-race", "-o", behave, "./testdata/behave").CombinedOutput(); err != nil {
		t.Fatalf("building behave: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-n", "4", "-on-failure", "continue", behave, "ftshrink")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("mpixrun exited 0 despite a failed rank; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("mpixrun error = %v, want exit status 1; output:\n%s", err, out)
	}
	s := string(out)
	for _, r := range []int{0, 2, 3} {
		want := "[" + strconv.Itoa(r) + "] ftshrink ok size=3 failed=[1]"
		if !strings.Contains(s, want) {
			t.Errorf("missing survivor line %q; output:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "continued past failed ranks [1]") {
		t.Errorf("missing continue summary; output:\n%s", s)
	}
}

// TestLongLinePassthrough checks that a rank's output line larger than
// bufio.Scanner's 1 MiB token cap survives the prefix multiplexer
// intact instead of being silently dropped.
func TestLongLinePassthrough(t *testing.T) {
	bin := buildLauncher(t)
	out, err := exec.Command(bin, "-n", "1", "./testdata/behave", "longline").CombinedOutput()
	if err != nil {
		t.Fatalf("mpixrun: %v\n%.2000s", err, out)
	}
	want := "[0] " + strings.Repeat("x", 2<<20)
	if !strings.Contains(string(out), want) {
		t.Fatalf("long line mangled: got %d bytes, %d of them 'x' (want %d)",
			len(out), strings.Count(string(out), "x"), 2<<20)
	}
}
