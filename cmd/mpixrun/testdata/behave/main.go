// behave is the mpixrun test target: a tiny rank program whose
// behavior is selected by its first argument, so launcher tests can
// script crashes and output shapes without real MPI traffic.
//
//	crash     rank 1 exits 3 shortly after startup; every other rank
//	          records its PID and sleeps far longer than the test
//	          budget — the launcher must kill it.
//	longline  prints one line much larger than bufio.Scanner's default
//	          token limit, then exits 0.
//	ftshrink  a real MPI job under -on-failure=continue: rank 1 dies
//	          after a first barrier; the survivors observe the failed
//	          allreduce (ErrProcFailed), run the ULFM drill — Revoke,
//	          AckFailed, Agree twice, Shrink — and finish a barrier and
//	          an allreduce on the survivor communicator, printing
//	          "ftshrink ok size=N failed=[...]" on success.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gompix/mpix"
)

func main() {
	mode := ""
	if len(os.Args) > 1 {
		mode = os.Args[1]
	}
	rank, _ := strconv.Atoi(os.Getenv("GOMPIX_RANK"))
	switch mode {
	case "crash":
		if dir := os.Getenv("MPIXTEST_PIDDIR"); dir != "" {
			pid := []byte(strconv.Itoa(os.Getpid()))
			os.WriteFile(filepath.Join(dir, fmt.Sprintf("rank%d.pid", rank)), pid, 0o644)
		}
		if rank == 1 {
			time.Sleep(200 * time.Millisecond) // let the survivors settle in
			os.Exit(3)
		}
		time.Sleep(30 * time.Second) // must be killed, not awaited
	case "longline":
		fmt.Println(strings.Repeat("x", 2<<20))
	case "ftshrink":
		ftshrink(rank)
	default:
		fmt.Fprintf(os.Stderr, "behave: unknown mode %q\n", mode)
		os.Exit(2)
	}
}

// die reports a failed expectation and exits 4, which the launcher
// surfaces as another failed rank — the test treats any survivor
// exiting non-zero as a drill failure.
func die(rank int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftshrink rank %d: %s\n", rank, fmt.Sprintf(format, args...))
	os.Exit(4)
}

// ftshrink is the end-to-end ULFM recovery drill under the real
// launcher. Rank 1 exits hard (no teardown) after the first barrier;
// mpixrun's -on-failure=continue roster update drives every survivor's
// failure detector, so the in-flight world allreduce aborts with
// ErrProcFailed everywhere — including on ranks whose blocked stage
// never addressed the dead rank. Survivors then recover exactly as a
// ULFM application would and prove the shrunken communicator works.
func ftshrink(rank int) {
	reg := mpix.NewMetrics()
	reg.Enable()
	w, err := mpix.NewWorldFromEnv(mpix.WithMetrics(reg))
	if err != nil {
		die(rank, "NewWorldFromEnv: %v", err)
	}
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		n := comm.Size()
		comm.Barrier()
		if rank == 1 {
			// The sleep lets the transport flush this rank's final barrier
			// frames so every survivor's first barrier completes cleanly;
			// the exit itself is abrupt — no Shutdown, sockets reset.
			time.Sleep(300 * time.Millisecond)
			os.Exit(3)
		}

		in := make([]byte, 4)
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(in, uint32(rank+1))
		// The abort cause is a race the drill must tolerate: this rank's
		// own verdict (ErrProcFailed) against the revoke flood from a
		// survivor that detected first (ErrCommRevoked).
		_, werr := comm.Iallreduce(in, out, 1, mpix.Int32, mpix.OpSum).WaitDeadline(30 * time.Second)
		if !errors.Is(werr, mpix.ErrProcFailed) && !errors.Is(werr, mpix.ErrCommRevoked) {
			die(rank, "world allreduce err = %v, want ErrProcFailed or ErrCommRevoked", werr)
		}

		comm.Revoke()
		comm.AckFailed()
		if _, err := comm.Agree(1); err != nil && !errors.Is(err, mpix.ErrProcFailed) {
			die(rank, "first Agree: %v", err)
		}
		failed := comm.AckFailed()
		if len(failed) != 1 || failed[0] != 1 {
			die(rank, "FailedRanks = %v, want [1]", failed)
		}
		if v, err := comm.Agree(1); err != nil || v != 1 {
			die(rank, "second Agree = (%d, %v), want (1, nil)", v, err)
		}
		child, err := comm.Shrink()
		if err != nil {
			die(rank, "Shrink: %v", err)
		}
		if child.Size() != n-1 {
			die(rank, "child size = %d, want %d", child.Size(), n-1)
		}
		child.Barrier()
		child.Allreduce(in, out, 1, mpix.Int32, mpix.OpSum)
		// Survivors contribute worldRank+1; only the dead rank 1's
		// contribution (2) is missing from the full-world sum.
		want := uint32(n*(n+1)/2 - 2)
		if got := binary.LittleEndian.Uint32(out); got != want {
			die(rank, "survivor allreduce = %d, want %d", got, want)
		}

		d := reg.Snapshot()
		for ev, wantC := range map[string]uint64{"revokes": 1, "agrees": 2, "shrinks": 1} {
			name := fmt.Sprintf("rank%d.comm.%s", rank, ev)
			if got := d.Counter(name); got != wantC {
				die(rank, "%s = %d, want %d", name, got, wantC)
			}
		}
		fmt.Printf("ftshrink ok size=%d failed=%v\n", child.Size(), failed)
	})
}
