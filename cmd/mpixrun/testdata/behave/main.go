// behave is the mpixrun test target: a tiny rank program whose
// behavior is selected by its first argument, so launcher tests can
// script crashes and output shapes without real MPI traffic.
//
//	crash     rank 1 exits 3 shortly after startup; every other rank
//	          records its PID and sleeps far longer than the test
//	          budget — the launcher must kill it.
//	longline  prints one line much larger than bufio.Scanner's default
//	          token limit, then exits 0.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

func main() {
	mode := ""
	if len(os.Args) > 1 {
		mode = os.Args[1]
	}
	rank, _ := strconv.Atoi(os.Getenv("GOMPIX_RANK"))
	switch mode {
	case "crash":
		if dir := os.Getenv("MPIXTEST_PIDDIR"); dir != "" {
			pid := []byte(strconv.Itoa(os.Getpid()))
			os.WriteFile(filepath.Join(dir, fmt.Sprintf("rank%d.pid", rank)), pid, 0o644)
		}
		if rank == 1 {
			time.Sleep(200 * time.Millisecond) // let the survivors settle in
			os.Exit(3)
		}
		time.Sleep(30 * time.Second) // must be killed, not awaited
	case "longline":
		fmt.Println(strings.Repeat("x", 2<<20))
	default:
		fmt.Fprintf(os.Stderr, "behave: unknown mode %q\n", mode)
		os.Exit(2)
	}
}
