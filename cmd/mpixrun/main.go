// mpixrun launches an N-rank gompix job as N OS processes over TCP
// loopback, the way mpiexec launches an MPI job. It reserves one
// listen address per rank, exports the launch contract (GOMPIX_RANK,
// GOMPIX_WORLD_SIZE, GOMPIX_ADDRS, GOMPIX_EPOCH) to each child, and
// multiplexes their output with a [rank] prefix.
//
// Usage:
//
//	mpixrun -n 4 ./pingpong -iters 100      # run a built binary
//	mpixrun -n 4 ./cmd/pingpong -iters 100  # go run a package directory
//
// If the target is a directory or a .go file it is run via "go run";
// otherwise it is executed directly. Exit status is the first
// non-zero child exit; remaining children are killed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"gompix/internal/launch"
)

func main() {
	n := flag.Int("n", 2, "number of ranks (one OS process each)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpixrun -n N target [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *n < 1 || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	target, args := flag.Arg(0), flag.Args()[1:]

	addrs, err := launch.FreePorts(*n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpixrun: %v\n", err)
		os.Exit(1)
	}
	job := launch.Info{WorldSize: *n, Addrs: addrs, Epoch: uint64(time.Now().UnixNano())}

	argv := []string{target}
	if isGoSource(target) {
		argv = append([]string{"go", "run", target}, args...)
	} else {
		argv = append(argv, args...)
	}

	procs := make([]*exec.Cmd, *n)
	var out sync.Mutex // serialize whole output lines across ranks
	var wg sync.WaitGroup
	exits := make([]error, *n)
	for r := 0; r < *n; r++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), job.Env(r)...)
		stdout, err1 := cmd.StdoutPipe()
		stderr, err2 := cmd.StderrPipe()
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "mpixrun: pipes for rank %d: %v %v\n", r, err1, err2)
			os.Exit(1)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "mpixrun: starting rank %d: %v\n", r, err)
			for _, p := range procs[:r] {
				p.Process.Kill()
			}
			os.Exit(1)
		}
		procs[r] = cmd
		wg.Add(2)
		go prefix(&wg, &out, os.Stdout, stdout, r)
		go prefix(&wg, &out, os.Stderr, stderr, r)
	}

	status := 0
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			exits[r] = err
			if status == 0 {
				status = 1
				// One dead rank dooms the job (as in MPI); reap the rest.
				for _, p := range procs {
					if p != cmd && p.ProcessState == nil {
						p.Process.Kill()
					}
				}
			}
		}
	}
	wg.Wait()
	for r, err := range exits {
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpixrun: rank %d: %v\n", r, err)
		}
	}
	os.Exit(status)
}

// isGoSource reports whether target should run under "go run".
func isGoSource(target string) bool {
	if strings.HasSuffix(target, ".go") {
		return true
	}
	st, err := os.Stat(target)
	return err == nil && st.IsDir()
}

// prefix copies r to w line by line, tagging each line with the rank.
func prefix(wg *sync.WaitGroup, mu *sync.Mutex, w io.Writer, r io.Reader, rank int) {
	defer wg.Done()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		mu.Lock()
		fmt.Fprintf(w, "[%d] %s\n", rank, sc.Text())
		mu.Unlock()
	}
}
