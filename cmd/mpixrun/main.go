// mpixrun launches an N-rank gompix job as N OS processes over TCP
// loopback, the way mpiexec launches an MPI job. It reserves one
// listen address per rank, exports the launch contract (GOMPIX_RANK,
// GOMPIX_WORLD_SIZE, GOMPIX_ADDRS, GOMPIX_EPOCH, and — when -hosts
// assigns placement — GOMPIX_NODE) to each child, and multiplexes
// their output with a [rank] prefix. Ranks sharing a node id talk over
// the mmap shared-memory transport; the default (no -hosts) puts every
// rank on one node, so a plain local job runs entirely over shm with
// TCP reserved for control traffic.
//
// Usage:
//
//	mpixrun -n 4 ./pingpong -iters 100      # run a built binary
//	mpixrun -n 4 ./cmd/pingpong -iters 100  # go run a package directory
//
// If the target is a directory or a .go file it is run via "go run";
// otherwise it is executed directly.
//
// Failure semantics are selected by -on-failure:
//
//   - kill (default): one dead rank dooms the job, as in MPI. Every
//     rank is reaped concurrently — the launcher never blocks on rank 0
//     while rank 3 is the one that crashed — and the first non-zero
//     exit kills the rest of the job promptly and sets the exit status.
//   - continue: survivors keep running. The launcher fans a roster
//     update out to every surviving rank (tcp.NotifyPeerDown, which
//     drives each survivor's failure detector to an ErrProcFailed
//     verdict for the dead rank without waiting for organic traffic to
//     time out), waits for the job to drain, and exits non-zero with
//     the failed rank set. Survivors are expected to recover
//     ULFM-style: Revoke the wounded communicator, Shrink it, and
//     continue on the survivor communicator.
//
// Each child runs in its own process group, and the kill signals the
// whole group, so grandchildren (the compiled binary under "go run")
// die with their parent instead of lingering as orphans holding TCP
// ports.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"gompix/internal/launch"
	"gompix/internal/transport/tcp"
)

func main() {
	n := flag.Int("n", 2, "number of ranks (one OS process each)")
	onFailure := flag.String("on-failure", "kill",
		"reaction to a failed rank: kill the job, or continue with survivors")
	hosts := flag.String("hosts", "",
		"simulated host placement, e.g. \"a,b\" (round-robin) or \"a:2,b:2\" (slots); empty = all ranks on one node")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpixrun [-n N] [-on-failure kill|continue] [-hosts SPEC] target [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *n < 1 || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	policy, err := launch.ParsePolicy(*onFailure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpixrun: %v\n", err)
		os.Exit(2)
	}
	nodes, err := launch.ParseHosts(*hosts, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpixrun: %v\n", err)
		os.Exit(2)
	}
	target, args := flag.Arg(0), flag.Args()[1:]

	addrs, err := launch.FreePorts(*n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpixrun: %v\n", err)
		os.Exit(1)
	}
	job := launch.Info{WorldSize: *n, Addrs: addrs, Epoch: uint64(time.Now().UnixNano()), Nodes: nodes}

	argv := []string{target}
	if isGoSource(target) {
		argv = append([]string{"go", "run", target}, args...)
	} else {
		argv = append(argv, args...)
	}

	procs := make([]*exec.Cmd, *n)
	var out sync.Mutex // serialize whole output lines across ranks

	// killJob terminates every rank's process group exactly once; safe
	// to call from any reaper.
	var killOnce sync.Once
	killJob := func() {
		killOnce.Do(func() {
			for _, p := range procs {
				if p != nil && p.Process != nil {
					killProc(p)
				}
			}
		})
	}

	exits := make([]error, *n)
	var reapers sync.WaitGroup
	for r := 0; r < *n; r++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), job.Env(r)...)
		setProcGroup(cmd)
		stdout, err1 := cmd.StdoutPipe()
		stderr, err2 := cmd.StderrPipe()
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "mpixrun: pipes for rank %d: %v %v\n", r, err1, err2)
			killJob()
			os.Exit(1)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "mpixrun: starting rank %d: %v\n", r, err)
			killJob()
			os.Exit(1)
		}
		procs[r] = cmd

		// One reaper per rank: drain both pipes, then Wait (os/exec
		// requires the pipes be fully read before Wait), then — on a
		// non-zero exit — doom the rest of the job immediately. Reaping
		// all ranks concurrently is what makes teardown prompt: a crash
		// of rank N-1 must not sit behind Waits on ranks 0..N-2.
		reapers.Add(1)
		go func(r int, cmd *exec.Cmd, stdout, stderr io.Reader) {
			defer reapers.Done()
			var pipes sync.WaitGroup
			pipes.Add(2)
			go prefix(&pipes, &out, os.Stdout, stdout, r)
			go prefix(&pipes, &out, os.Stderr, stderr, r)
			pipes.Wait()
			if err := cmd.Wait(); err != nil {
				exits[r] = err
				if policy == launch.PolicyKill {
					killJob()
					return
				}
				// continue: survivors stay up. Fan the roster update out so
				// every survivor's failure detector reaches its verdict for
				// the dead rank promptly; best-effort — a survivor may
				// already know, or may itself be gone.
				for s := 0; s < len(addrs); s++ {
					if s == r {
						continue
					}
					go tcp.NotifyPeerDown(addrs[s], job.Epoch, r)
				}
			}
		}(r, cmd, stdout, stderr)
	}

	reapers.Wait()
	status := 0
	var failed []int
	for r, err := range exits {
		if err != nil {
			status = 1
			failed = append(failed, r)
			fmt.Fprintf(os.Stderr, "mpixrun: rank %d: %v\n", r, err)
		}
	}
	if policy == launch.PolicyContinue && len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "mpixrun: continued past failed ranks %v; job drained\n", failed)
	}
	os.Exit(status)
}

// isGoSource reports whether target should run under "go run".
func isGoSource(target string) bool {
	if strings.HasSuffix(target, ".go") {
		return true
	}
	st, err := os.Stat(target)
	return err == nil && st.IsDir()
}

// prefix copies r to w line by line, tagging each line with the rank.
// Lines of any length survive (no Scanner token cap — a rank dumping a
// wide trace or a long JSON blob must not have output silently
// dropped); a trailing unterminated line is flushed at EOF, and read
// errors other than EOF are reported rather than swallowed.
func prefix(wg *sync.WaitGroup, mu *sync.Mutex, w io.Writer, r io.Reader, rank int) {
	defer wg.Done()
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			line = strings.TrimSuffix(line, "\n")
			mu.Lock()
			fmt.Fprintf(w, "[%d] %s\n", rank, line)
			mu.Unlock()
		}
		if err != nil {
			if err != io.EOF {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "mpixrun: reading rank %d output: %v\n", rank, err)
				mu.Unlock()
			}
			return
		}
	}
}
