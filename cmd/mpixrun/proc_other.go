//go:build !unix

package main

import "os/exec"

// setProcGroup is a no-op where process groups are unavailable; "go
// run" grandchildren may outlive a killed wrapper on these platforms.
func setProcGroup(cmd *exec.Cmd) {}

// killProc terminates the child process.
func killProc(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill()
	}
}
