// Command benchjson converts benchmark output into the committed
// BENCH_progress.json gate file. It reads a combined stream on stdin —
// `go test -bench` result lines plus the CSV block from
// `progressbench -workload msgrate -csv` — and rewrites the JSON
// file's "current" section. An existing "baseline" section is
// preserved so the file always carries a before/after pair; on the
// first run (no file, or no baseline yet) the parsed numbers become
// both baseline and current.
//
// Usage (what `make bench` runs):
//
//	( go test -bench ... ; progressbench -workload msgrate -csv ) \
//	    | benchjson -o BENCH_progress.json
//
// Pass -rebase to overwrite the baseline with this run as well.
//
// Pass -check to also gate the run: after writing the file, every
// msgrate key present in the baseline — the sim "1","2","4",... VCI
// sweep and the "tcpN" multiprocess keys alike — must be present in
// the current run and within -tol (fractional, default 0.30) of the
// baseline, or benchjson exits 1 listing the regressions.
//
// -check also enforces TCP scaling shape within the current run: the
// multi-VCI msgrate keys tcpN (N > 1) must not fall below this run's
// tcp1 by more than -invtol — a scaling inversion means adding VCIs
// made aggregate throughput worse, i.e. per-stream progress serialized
// somewhere, regardless of how the absolute rate compares to the
// committed baseline.
//
// Finally, when the run carries both "shm1" and "tcp1" keys, -check
// requires shm1 strictly above tcp1: the intra-node shared-memory
// transport must beat loopback TCP on the same machine in the same
// run, with no tolerance.
//
// The eagersgd workload's keys (eager4/sync4 and the eagertcp4-style
// multiprocess variants) gate in pairs: each eager<X> must travel with
// its sync<X>, and must be at least -eagerx times it — the relaxed
// allreduce's straggler tolerance, measured against the synchronous
// collective under the same injected spike schedule.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// run holds one measured configuration: per-benchmark metric maps
// keyed by the unit (ns_per_op, allocs_per_op, ...) plus the msgrate
// sweep keyed by VCI count.
type run struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	MsgRate    map[string]float64            `json:"msgrate_mmsg_per_s,omitempty"`
}

// gateFile is the on-disk shape of BENCH_progress.json.
type gateFile struct {
	Note     string `json:"note,omitempty"`
	Baseline *run   `json:"baseline,omitempty"`
	Current  *run   `json:"current,omitempty"`
}

// benchLine matches a `go test -bench` result line:
//
//	BenchmarkName[-P] <iters> <value> <unit> [<value> <unit> ...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// metricPair matches one "<value> <unit>" column within a bench line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+(\S+)`)

// unitKey turns a Go benchmark unit into a stable JSON key:
// "ns/op" -> "ns_per_op", "Mmsg/s" -> "mmsg_per_s".
func unitKey(unit string) string {
	k := strings.ToLower(unit)
	k = strings.ReplaceAll(k, "/", "_per_")
	k = strings.ReplaceAll(k, "-", "_")
	return k
}

// parse consumes the combined stdin stream. Benchmark lines and the
// msgrate CSV block ("x,<series>" header followed by "v,rate" rows)
// may appear in any order; everything else is ignored.
func parse(sc *bufio.Scanner) (*run, error) {
	r := &run{Benchmarks: map[string]map[string]float64{}}
	inCSV := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if m := benchLine.FindStringSubmatch(line); m != nil {
			name := strings.TrimPrefix(m[1], "Benchmark")
			metrics := map[string]float64{}
			for _, p := range metricPair.FindAllStringSubmatch(m[2], -1) {
				v, err := strconv.ParseFloat(p[1], 64)
				if err != nil {
					continue
				}
				metrics[unitKey(p[2])] = v
			}
			if len(metrics) > 0 {
				r.Benchmarks[name] = metrics
			}
			inCSV = false
			continue
		}
		if strings.HasPrefix(line, "x,") {
			inCSV = true
			continue
		}
		if inCSV {
			cols := strings.Split(line, ",")
			if len(cols) < 2 {
				inCSV = false
				continue
			}
			rate, err := strconv.ParseFloat(cols[1], 64)
			if err != nil {
				inCSV = false
				continue
			}
			if r.MsgRate == nil {
				r.MsgRate = map[string]float64{}
			}
			r.MsgRate[cols[0]] = rate
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Benchmarks) == 0 && len(r.MsgRate) == 0 {
		return nil, fmt.Errorf("no benchmark lines or msgrate CSV rows found on stdin")
	}
	return r, nil
}

// checkMsgRate compares every baseline msgrate key against the current
// run: a missing key or a rate below baseline*(1-tol) is a regression.
// Keys are checked in sorted order so failure output is deterministic.
func checkMsgRate(baseline, current *run, tol float64) []string {
	if baseline == nil || len(baseline.MsgRate) == 0 {
		return nil
	}
	keys := make([]string, 0, len(baseline.MsgRate))
	for k := range baseline.MsgRate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		base := baseline.MsgRate[k]
		cur, ok := current.MsgRate[k]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("msgrate[%s]: missing from current run (baseline %.3f Mmsg/s)", k, base))
			continue
		}
		if floor := base * (1 - tol); cur < floor {
			regressions = append(regressions,
				fmt.Sprintf("msgrate[%s]: %.3f Mmsg/s < %.3f (baseline %.3f, tol %.0f%%)",
					k, cur, floor, base, tol*100))
		}
	}
	return regressions
}

// tcpKey matches the multiprocess msgrate series keys ("tcp4" → 4).
var tcpKey = regexp.MustCompile(`^tcp(\d+)$`)

// checkShmFaster enforces the shared-memory transport's reason to
// exist: within one run, the single-VCI intra-node rate (shm1) must be
// strictly above the single-VCI TCP loopback rate (tcp1). Both points
// are measured seconds apart on the same machine, so no tolerance
// applies — an mmap ring that loses to a socket round-trip through the
// kernel is a defect, not noise. Runs lacking either key (older
// baselines, platforms without mmap) are not gated.
func checkShmFaster(current *run) []string {
	if current == nil {
		return nil
	}
	shm, okS := current.MsgRate["shm1"]
	tcp, okT := current.MsgRate["tcp1"]
	if !okS || !okT {
		return nil
	}
	if shm <= tcp {
		return []string{fmt.Sprintf(
			"msgrate[shm1]: %.3f Mmsg/s does not beat tcp1 = %.3f — the intra-node shared-memory path must outrun loopback TCP",
			shm, tcp)}
	}
	return nil
}

// checkContPaired enforces that the continuation workload's keys
// travel as a pair: "contcb" and "contpoll" are only meaningful
// relative to each other (same run, same machine seconds), so a run
// carrying one without the other — a half-executed cont sweep — fails
// rather than silently gating on a lone number. Runs with neither key
// (pipelines that skip the cont workload) are not gated.
func checkContPaired(current *run) []string {
	if current == nil {
		return nil
	}
	_, okCb := current.MsgRate["contcb"]
	_, okPl := current.MsgRate["contpoll"]
	if okCb == okPl {
		return nil
	}
	have, want := "contcb", "contpoll"
	if okPl {
		have, want = "contpoll", "contcb"
	}
	return []string{fmt.Sprintf(
		"msgrate[%s]: present without its pair %s — the cont workload must report callback and poll rates together", have, want)}
}

// eagerKey matches the eagersgd series keys and captures the
// transport suffix: "eager4" → "4", "eagertcp4" → "tcp4".
var eagerKey = regexp.MustCompile(`^eager([a-z]*\d+)$`)

// checkEagerPaired enforces that every eagersgd key travels with its
// pair: an "eager<X>" without "sync<X>" (or the reverse) is a
// half-executed sweep, and the comparison gate below would silently
// skip it. Runs with no eagersgd keys at all are not gated.
func checkEagerPaired(current *run) []string {
	if current == nil {
		return nil
	}
	keys := make([]string, 0, len(current.MsgRate))
	for k := range current.MsgRate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regs []string
	for _, k := range keys {
		if m := eagerKey.FindStringSubmatch(k); m != nil {
			if _, ok := current.MsgRate["sync"+m[1]]; !ok {
				regs = append(regs, fmt.Sprintf(
					"msgrate[%s]: present without its pair sync%s — the eagersgd workload must report both modes together", k, m[1]))
			}
		} else if rest, ok := strings.CutPrefix(k, "sync"); ok {
			if _, okE := current.MsgRate["eager"+rest]; !okE {
				regs = append(regs, fmt.Sprintf(
					"msgrate[%s]: present without its pair eager%s — the eagersgd workload must report both modes together", k, rest))
			}
		}
	}
	return regs
}

// checkEagerWins enforces the relaxed allreduce's reason to exist:
// within one run, every eager<X> must be at least eagerx times its
// paired sync<X>. Both numbers are measured back-to-back under the
// same injected straggler schedule, so the ratio gates the collective
// design, not the machine. Unpaired keys are checkEagerPaired's
// problem; runs with no eagersgd keys are not gated.
func checkEagerWins(current *run, eagerx float64) []string {
	if current == nil || eagerx <= 0 {
		return nil
	}
	keys := make([]string, 0, len(current.MsgRate))
	for k := range current.MsgRate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regs []string
	for _, k := range keys {
		m := eagerKey.FindStringSubmatch(k)
		if m == nil {
			continue
		}
		sync, ok := current.MsgRate["sync"+m[1]]
		if !ok || sync <= 0 {
			continue
		}
		if cur := current.MsgRate[k]; cur < sync*eagerx {
			regs = append(regs, fmt.Sprintf(
				"msgrate[%s]: %.3f steps/s is under %.2fx its paired sync%s = %.3f — the relaxed allreduce must outrun the synchronous one under stragglers",
				k, cur, eagerx, m[1], sync))
		}
	}
	return regs
}

// checkScaling flags scaling inversions inside one run: any tcpN
// (N > 1) below tcp1*(1-invtol) fails. It compares within the current
// run only — a uniformly slow machine shifts every key together, but
// an inversion is a shape defect no amount of machine noise excuses.
func checkScaling(current *run, invtol float64) []string {
	if current == nil {
		return nil
	}
	base, ok := current.MsgRate["tcp1"]
	if !ok || base <= 0 {
		return nil
	}
	keys := make([]string, 0, len(current.MsgRate))
	for k := range current.MsgRate {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var inversions []string
	for _, k := range keys {
		m := tcpKey.FindStringSubmatch(k)
		if m == nil || k == "tcp1" {
			continue
		}
		if cur := current.MsgRate[k]; cur < base*(1-invtol) {
			inversions = append(inversions,
				fmt.Sprintf("msgrate[%s]: %.3f Mmsg/s is a scaling inversion under tcp1 = %.3f (floor %.3f, invtol %.0f%%)",
					k, cur, base, base*(1-invtol), invtol*100))
		}
	}
	return inversions
}

func main() {
	out := flag.String("o", "BENCH_progress.json", "output JSON file (baseline preserved if present)")
	rebase := flag.Bool("rebase", false, "also overwrite the baseline with this run")
	check := flag.Bool("check", false, "fail (exit 1) when a baseline msgrate key is missing or regressed beyond -tol")
	tol := flag.Float64("tol", 0.30, "fractional msgrate regression tolerance for -check")
	invtol := flag.Float64("invtol", 0.30, "fractional tolerance for the tcpN-under-tcp1 scaling-inversion gate")
	eagerx := flag.Float64("eagerx", 1.0, "minimum eagerN/syncN steps/s ratio for the eagersgd gate")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	cur, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	var f gateFile
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	f.Current = cur
	if f.Baseline == nil || *rebase {
		f.Baseline = cur
	}
	if f.Note == "" {
		f.Note = "progress-engine benchmark gate; regenerate `current` with `make bench` (baseline is preserved)"
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks, %d msgrate points)\n",
		*out, len(cur.Benchmarks), len(cur.MsgRate))

	if *check {
		regs := checkMsgRate(f.Baseline, cur, *tol)
		regs = append(regs, checkScaling(cur, *invtol)...)
		regs = append(regs, checkShmFaster(cur)...)
		regs = append(regs, checkContPaired(cur)...)
		regs = append(regs, checkEagerPaired(cur)...)
		regs = append(regs, checkEagerWins(cur, *eagerx)...)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: msgrate gate passed")
	}
}
