package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkProgressEmpty        	    2000	        29.05 ns/op	       0 B/op	       0 allocs/op
BenchmarkProgressEagerSteady-4   	     500	     27562 ns/op	         2.322 Mmsg/s	      27 B/op	       0 allocs/op
ok  	gompix/internal/mpi	0.076s
== msgrate: aggregate small-message rate vs VCI count ==
VCIs  multi-VCI [Mmsg/s]
1     0.998
x,multi-VCI
1,0.998
2,0.959
8,0.851

`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := r.Benchmarks["ProgressEmpty"]
	if !ok || b["ns_per_op"] != 29.05 || b["allocs_per_op"] != 0 {
		t.Fatalf("ProgressEmpty = %+v", b)
	}
	// The -4 GOMAXPROCS suffix is stripped; custom units keep their name.
	s, ok := r.Benchmarks["ProgressEagerSteady"]
	if !ok || s["mmsg_per_s"] != 2.322 || s["b_per_op"] != 27 {
		t.Fatalf("ProgressEagerSteady = %+v", s)
	}
	// Only the CSV block feeds msgrate, not the rendered table rows.
	if len(r.MsgRate) != 3 || r.MsgRate["2"] != 0.959 {
		t.Fatalf("MsgRate = %+v", r.MsgRate)
	}
}

func TestParseEmptyInputFails(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("nothing here\n"))); err == nil {
		t.Fatal("want error on input with no benchmark data")
	}
}
