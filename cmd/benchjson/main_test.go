package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkProgressEmpty        	    2000	        29.05 ns/op	       0 B/op	       0 allocs/op
BenchmarkProgressEagerSteady-4   	     500	     27562 ns/op	         2.322 Mmsg/s	      27 B/op	       0 allocs/op
ok  	gompix/internal/mpi	0.076s
== msgrate: aggregate small-message rate vs VCI count ==
VCIs  multi-VCI [Mmsg/s]
1     0.998
x,multi-VCI
1,0.998
2,0.959
8,0.851

`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := r.Benchmarks["ProgressEmpty"]
	if !ok || b["ns_per_op"] != 29.05 || b["allocs_per_op"] != 0 {
		t.Fatalf("ProgressEmpty = %+v", b)
	}
	// The -4 GOMAXPROCS suffix is stripped; custom units keep their name.
	s, ok := r.Benchmarks["ProgressEagerSteady"]
	if !ok || s["mmsg_per_s"] != 2.322 || s["b_per_op"] != 27 {
		t.Fatalf("ProgressEagerSteady = %+v", s)
	}
	// Only the CSV block feeds msgrate, not the rendered table rows.
	if len(r.MsgRate) != 3 || r.MsgRate["2"] != 0.959 {
		t.Fatalf("MsgRate = %+v", r.MsgRate)
	}
}

func TestParseEmptyInputFails(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("nothing here\n"))); err == nil {
		t.Fatal("want error on input with no benchmark data")
	}
}

func mkRun(rates map[string]float64) *run {
	return &run{Benchmarks: map[string]map[string]float64{}, MsgRate: rates}
}

// TestCheckMsgRate covers the regression gate: sim and tcpN keys are
// treated identically — within tolerance passes, a regressed or
// missing key of either flavor fails, and improvements never fail.
func TestCheckMsgRate(t *testing.T) {
	baseline := mkRun(map[string]float64{"1": 1.0, "8": 0.8, "tcp1": 0.3, "tcp8": 0.35})

	if regs := checkMsgRate(baseline, mkRun(map[string]float64{
		"1": 0.95, "8": 0.79, "tcp1": 0.29, "tcp8": 0.40,
	}), 0.30); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}

	regs := checkMsgRate(baseline, mkRun(map[string]float64{
		"1": 1.0, "8": 0.8, "tcp1": 0.1, "tcp8": 0.35,
	}), 0.30)
	if len(regs) != 1 || !strings.Contains(regs[0], "tcp1") {
		t.Fatalf("regressed tcp key not flagged: %v", regs)
	}

	regs = checkMsgRate(baseline, mkRun(map[string]float64{
		"1": 0.5, "8": 0.8, "tcp1": 0.3, "tcp8": 0.35,
	}), 0.30)
	if len(regs) != 1 || !strings.Contains(regs[0], "msgrate[1]") {
		t.Fatalf("regressed sim key not flagged: %v", regs)
	}

	regs = checkMsgRate(baseline, mkRun(map[string]float64{
		"1": 1.0, "8": 0.8, "tcp1": 0.3,
	}), 0.30)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") || !strings.Contains(regs[0], "tcp8") {
		t.Fatalf("missing tcp key not flagged: %v", regs)
	}

	if regs := checkMsgRate(nil, mkRun(nil), 0.30); regs != nil {
		t.Fatalf("nil baseline should not gate: %v", regs)
	}
	if regs := checkMsgRate(mkRun(nil), mkRun(nil), 0.30); regs != nil {
		t.Fatalf("empty baseline should not gate: %v", regs)
	}
}

// TestCheckMsgRateDeterministic pins the sorted-key failure order so
// CI diffs are stable.
func TestCheckMsgRateDeterministic(t *testing.T) {
	baseline := mkRun(map[string]float64{"8": 1.0, "1": 1.0, "tcp2": 1.0})
	empty := mkRun(nil)
	var first []string
	for i := 0; i < 5; i++ {
		regs := checkMsgRate(baseline, empty, 0.30)
		if len(regs) != 3 {
			t.Fatalf("want 3 regressions, got %v", regs)
		}
		if first == nil {
			first = regs
			continue
		}
		for j := range regs {
			if regs[j] != first[j] {
				t.Fatalf("non-deterministic order: %v vs %v", regs, first)
			}
		}
	}
	if !strings.Contains(first[0], "msgrate[1]") || !strings.Contains(first[2], "tcp2") {
		t.Fatalf("unexpected order: %v", first)
	}
}

// TestCheckContPaired covers the cont-workload pairing gate: contcb
// and contpoll must appear together or not at all.
func TestCheckContPaired(t *testing.T) {
	if regs := checkContPaired(mkRun(map[string]float64{
		"contcb": 1.2, "contpoll": 1.1, "tcp1": 0.3,
	})); len(regs) != 0 {
		t.Fatalf("paired keys flagged: %v", regs)
	}
	if regs := checkContPaired(mkRun(map[string]float64{"tcp1": 0.3})); len(regs) != 0 {
		t.Fatalf("cont-free run flagged: %v", regs)
	}
	regs := checkContPaired(mkRun(map[string]float64{"contcb": 1.2}))
	if len(regs) != 1 || !strings.Contains(regs[0], "contpoll") {
		t.Fatalf("lone contcb not flagged: %v", regs)
	}
	regs = checkContPaired(mkRun(map[string]float64{"contpoll": 1.1}))
	if len(regs) != 1 || !strings.Contains(regs[0], "contcb") {
		t.Fatalf("lone contpoll not flagged: %v", regs)
	}
	if regs := checkContPaired(nil); regs != nil {
		t.Fatalf("nil run should not gate: %v", regs)
	}
}

// TestCheckScaling covers the in-run scaling-inversion gate: tcpN keys
// falling more than invtol under this run's tcp1 fail; sim keys, flat
// or improving scaling curves, and runs without tcp1 never do.
func TestCheckScaling(t *testing.T) {
	if regs := checkScaling(mkRun(map[string]float64{
		"tcp1": 0.30, "tcp2": 0.31, "tcp4": 0.28, "tcp8": 0.33,
	}), 0.30); len(regs) != 0 {
		t.Fatalf("healthy scaling flagged: %v", regs)
	}

	regs := checkScaling(mkRun(map[string]float64{
		"tcp1": 0.30, "tcp2": 0.29, "tcp4": 0.12, "tcp8": 0.31,
	}), 0.30)
	if len(regs) != 1 || !strings.Contains(regs[0], "tcp4") || !strings.Contains(regs[0], "inversion") {
		t.Fatalf("tcp4 inversion not flagged: %v", regs)
	}

	// Two inversions report deterministically, in sorted key order.
	regs = checkScaling(mkRun(map[string]float64{
		"tcp1": 0.30, "tcp4": 0.10, "tcp8": 0.11,
	}), 0.30)
	if len(regs) != 2 || !strings.Contains(regs[0], "tcp4") || !strings.Contains(regs[1], "tcp8") {
		t.Fatalf("want tcp4 then tcp8, got %v", regs)
	}

	// Sim VCI keys use the same integers but are not tcp-prefixed and
	// must not participate.
	if regs := checkScaling(mkRun(map[string]float64{
		"1": 1.0, "8": 0.1, "tcp1": 0.30, "tcp8": 0.29,
	}), 0.30); len(regs) != 0 {
		t.Fatalf("sim keys leaked into the scaling gate: %v", regs)
	}

	// No tcp1 anchor (sim-only run, or a machine without the
	// multiprocess sweep): nothing to compare against.
	if regs := checkScaling(mkRun(map[string]float64{"tcp4": 0.01, "8": 1.0}), 0.30); regs != nil {
		t.Fatalf("gate ran without a tcp1 anchor: %v", regs)
	}
	if regs := checkScaling(nil, 0.30); regs != nil {
		t.Fatalf("nil run should not gate: %v", regs)
	}
}

// TestCheckEagerPaired covers the eagersgd both-or-neither gate, in
// both directions and across transport-suffixed keys.
func TestCheckEagerPaired(t *testing.T) {
	if regs := checkEagerPaired(mkRun(map[string]float64{
		"eager4": 160, "sync4": 70, "eagertcp4": 220, "synctcp4": 75, "tcp1": 0.3,
	})); len(regs) != 0 {
		t.Fatalf("paired keys flagged: %v", regs)
	}
	if regs := checkEagerPaired(mkRun(map[string]float64{"tcp1": 0.3, "contcb": 1.0})); len(regs) != 0 {
		t.Fatalf("eagersgd-free run flagged: %v", regs)
	}
	regs := checkEagerPaired(mkRun(map[string]float64{"eager4": 160}))
	if len(regs) != 1 || !strings.Contains(regs[0], "sync4") {
		t.Fatalf("lone eager4 not flagged: %v", regs)
	}
	regs = checkEagerPaired(mkRun(map[string]float64{"syncshm4": 77}))
	if len(regs) != 1 || !strings.Contains(regs[0], "eagershm4") {
		t.Fatalf("lone syncshm4 not flagged: %v", regs)
	}
	// A half-executed sweep reports each orphan deterministically.
	regs = checkEagerPaired(mkRun(map[string]float64{"eager4": 160, "eagertcp4": 220}))
	if len(regs) != 2 || !strings.Contains(regs[0], "eager4") || !strings.Contains(regs[1], "eagertcp4") {
		t.Fatalf("want eager4 then eagertcp4 orphans, got %v", regs)
	}
	if regs := checkEagerPaired(nil); regs != nil {
		t.Fatalf("nil run should not gate: %v", regs)
	}
}

// TestCheckEagerWins covers the eager-vs-sync ratio gate: every
// eager<X> must be at least eagerx times its paired sync<X>, within
// the same run.
func TestCheckEagerWins(t *testing.T) {
	healthy := mkRun(map[string]float64{
		"eager4": 160, "sync4": 70, "eagertcp4": 220, "synctcp4": 75,
	})
	if regs := checkEagerWins(healthy, 2.0); len(regs) != 0 {
		t.Fatalf("healthy ratios flagged: %v", regs)
	}
	// eager4/sync4 = 1.5 < 2.0 fails; the tcp pair (2.93) passes.
	regs := checkEagerWins(mkRun(map[string]float64{
		"eager4": 105, "sync4": 70, "eagertcp4": 220, "synctcp4": 75,
	}), 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "eager4") {
		t.Fatalf("degraded eager4 not flagged: %v", regs)
	}
	// The same numbers pass a laxer ratio.
	if regs := checkEagerWins(mkRun(map[string]float64{
		"eager4": 105, "sync4": 70,
	}), 1.2); len(regs) != 0 {
		t.Fatalf("ratio 1.5 failed the 1.2x gate: %v", regs)
	}
	// Unpaired keys are the paired gate's problem, not this one's.
	if regs := checkEagerWins(mkRun(map[string]float64{"eager4": 1}), 2.0); len(regs) != 0 {
		t.Fatalf("unpaired eager4 flagged by the ratio gate: %v", regs)
	}
	if regs := checkEagerWins(mkRun(map[string]float64{"tcp1": 0.3}), 2.0); len(regs) != 0 {
		t.Fatalf("eagersgd-free run flagged: %v", regs)
	}
	if regs := checkEagerWins(nil, 2.0); regs != nil {
		t.Fatalf("nil run should not gate: %v", regs)
	}
}
