// progressbench regenerates the evaluation figures of "MPI Progress
// For All" (SC 2024) on the gompix simulated substrate.
//
// Usage:
//
//	progressbench                 # run everything (takes minutes)
//	progressbench -fig 7,13       # only Figures 7 and 13
//	progressbench -fig ablations  # only the ablation studies
//	progressbench -quick          # reduced sweeps
//	progressbench -csv            # additionally emit CSV blocks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gompix/internal/bench"
	"gompix/internal/stats"
)

var runners = []struct {
	key string
	fn  func(bench.Options) *stats.Figure
}{
	{"7", bench.Fig7},
	{"8", bench.Fig8},
	{"9", bench.Fig9},
	{"10", bench.Fig10},
	{"11", bench.Fig11},
	{"12", bench.Fig12},
	{"13", bench.Fig13},
	{"ablation-overlap", bench.AblationOverlap},
	{"ablation-progress-thread", bench.AblationProgressThread},
	{"ablation-threshold", bench.AblationThreshold},
	{"fault-recovery", bench.FaultRecovery},
}

func main() {
	figs := flag.String("fig", "all", "comma-separated figure list (7..13), ablation names, 'ablations', or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	csv := flag.Bool("csv", false, "also emit CSV data blocks")
	flag.Parse()

	want := map[string]bool{}
	for _, tok := range strings.Split(*figs, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		switch tok {
		case "", "all":
			for _, r := range runners {
				want[r.key] = true
			}
		case "ablations":
			for _, r := range runners {
				if strings.HasPrefix(r.key, "ablation") {
					want[r.key] = true
				}
			}
		default:
			tok = strings.TrimPrefix(tok, "fig")
			want[tok] = true
		}
	}

	o := bench.Options{Quick: *quick}
	ran := 0
	for _, r := range runners {
		if !want[r.key] {
			continue
		}
		ran++
		fig := r.fn(o)
		fmt.Println(fig.Render())
		if *csv {
			fmt.Println(fig.RenderCSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figures matched %q; known: ", *figs)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, "%s ", r.key)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
