// progressbench regenerates the evaluation figures of "MPI Progress
// For All" (SC 2024) on the gompix simulated substrate.
//
// Usage:
//
//	progressbench                 # run everything (takes minutes)
//	progressbench -fig 7,13       # only Figures 7 and 13
//	progressbench -fig ablations  # only the ablation studies
//	progressbench -quick          # reduced sweeps
//	progressbench -csv            # additionally emit CSV blocks
//	progressbench -metrics        # observability workload, print metrics
//	progressbench -trace-out t.json  # ... and write a Chrome trace
//	progressbench -workload msgrate  # multi-VCI message-rate sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gompix/internal/bench"
	"gompix/internal/stats"
	"gompix/internal/trace"
)

var runners = []struct {
	key string
	fn  func(bench.Options) *stats.Figure
}{
	{"7", bench.Fig7},
	{"8", bench.Fig8},
	{"9", bench.Fig9},
	{"10", bench.Fig10},
	{"11", bench.Fig11},
	{"12", bench.Fig12},
	{"13", bench.Fig13},
	{"ablation-overlap", bench.AblationOverlap},
	{"ablation-progress-thread", bench.AblationProgressThread},
	{"ablation-threshold", bench.AblationThreshold},
	{"fault-recovery", bench.FaultRecovery},
}

// workloads are throughput sweeps selected with -workload; unlike the
// figure runners they are not part of the "all" set, since they are
// gates on engine performance rather than paper reproductions.
var workloads = map[string]func(bench.Options) *stats.Figure{
	"msgrate": bench.MsgRate,
}

func main() {
	figs := flag.String("fig", "all", "comma-separated figure list (7..13), ablation names, 'ablations', or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	csv := flag.Bool("csv", false, "also emit CSV data blocks")
	showMetrics := flag.Bool("metrics", false, "run the observability workload and print the metrics snapshot")
	traceOut := flag.String("trace-out", "", "run the observability workload and write a Chrome trace_event JSON file (open in Perfetto)")
	workload := flag.String("workload", "", "run a throughput workload instead of the figure suite (msgrate)")
	flag.Parse()

	if *workload != "" {
		fn, ok := workloads[strings.ToLower(strings.TrimSpace(*workload))]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; known: ", *workload)
			for k := range workloads {
				fmt.Fprintf(os.Stderr, "%s ", k)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		fig := fn(bench.Options{Quick: *quick})
		fmt.Println(fig.Render())
		if *csv {
			fmt.Println(fig.RenderCSV())
		}
		return
	}

	if *showMetrics || *traceOut != "" {
		if err := observe(bench.Options{Quick: *quick}, *showMetrics, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "progressbench:", err)
			os.Exit(1)
		}
		// Observability-only invocation: don't also run the (slow)
		// figure suite unless figures were asked for explicitly.
		figSet := false
		flag.Visit(func(f *flag.Flag) { figSet = figSet || f.Name == "fig" })
		if !figSet {
			return
		}
	}

	want := map[string]bool{}
	for _, tok := range strings.Split(*figs, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		switch tok {
		case "", "all":
			for _, r := range runners {
				want[r.key] = true
			}
		case "ablations":
			for _, r := range runners {
				if strings.HasPrefix(r.key, "ablation") {
					want[r.key] = true
				}
			}
		default:
			tok = strings.TrimPrefix(tok, "fig")
			want[tok] = true
		}
	}

	o := bench.Options{Quick: *quick}
	ran := 0
	for _, r := range runners {
		if !want[r.key] {
			continue
		}
		ran++
		fig := r.fn(o)
		fmt.Println(fig.Render())
		if *csv {
			fmt.Println(fig.RenderCSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figures matched %q; known: ", *figs)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, "%s ", r.key)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

// observe runs the instrumented workload and emits whichever outputs
// were requested: the metrics snapshot on stdout, the Chrome trace to
// a file, or both.
func observe(o bench.Options, showMetrics bool, traceOut string) error {
	res := bench.Observe(o)
	if showMetrics {
		fmt.Println("== observability workload metrics ==")
		fmt.Print(res.Snap.String())
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, res.Events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", len(res.Events), traceOut)
	}
	return nil
}
