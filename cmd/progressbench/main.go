// progressbench regenerates the evaluation figures of "MPI Progress
// For All" (SC 2024) on the gompix simulated substrate.
//
// Usage:
//
//	progressbench                 # run everything (takes minutes)
//	progressbench -fig 7,13       # only Figures 7 and 13
//	progressbench -fig ablations  # only the ablation studies
//	progressbench -quick          # reduced sweeps
//	progressbench -csv            # additionally emit CSV blocks
//	progressbench -metrics        # observability workload, print metrics
//	progressbench -trace-out t.json  # ... and write a Chrome trace
//	progressbench -workload msgrate  # multi-VCI message-rate sweep
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"gompix/internal/bench"
	"gompix/internal/launch"
	"gompix/internal/stats"
	"gompix/internal/trace"
)

var runners = []struct {
	key string
	fn  func(bench.Options) *stats.Figure
}{
	{"7", bench.Fig7},
	{"8", bench.Fig8},
	{"9", bench.Fig9},
	{"10", bench.Fig10},
	{"11", bench.Fig11},
	{"12", bench.Fig12},
	{"13", bench.Fig13},
	{"ablation-overlap", bench.AblationOverlap},
	{"ablation-progress-thread", bench.AblationProgressThread},
	{"ablation-threshold", bench.AblationThreshold},
	{"fault-recovery", bench.FaultRecovery},
}

// workloads are throughput sweeps selected with -workload; unlike the
// figure runners they are not part of the "all" set, since they are
// gates on engine performance rather than paper reproductions.
var workloads = map[string]func(bench.Options) *stats.Figure{
	"msgrate": bench.MsgRate,
}

func main() {
	figs := flag.String("fig", "all", "comma-separated figure list (7..13), ablation names, 'ablations', or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	csv := flag.Bool("csv", false, "also emit CSV data blocks")
	showMetrics := flag.Bool("metrics", false, "run the observability workload and print the metrics snapshot")
	traceOut := flag.String("trace-out", "", "run the observability workload and write a Chrome trace_event JSON file (open in Perfetto)")
	workload := flag.String("workload", "", "run a throughput workload instead of the figure suite (msgrate)")
	vcis := flag.Int("vcis", 0, "internal: VCI count when running as a launched msgrate rank")
	flag.Parse()

	if *workload != "" {
		key := strings.ToLower(strings.TrimSpace(*workload))
		if launch.Launched() && key == "msgrate" {
			// One rank of the multiprocess TCP sweep, spawned below.
			if err := bench.MsgRateLaunched(bench.Options{Quick: *quick}, *vcis); err != nil {
				fmt.Fprintln(os.Stderr, "progressbench:", err)
				os.Exit(1)
			}
			return
		}
		fn, ok := workloads[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; known: ", *workload)
			for k := range workloads {
				fmt.Fprintf(os.Stderr, "%s ", k)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		fig := fn(bench.Options{Quick: *quick})
		fmt.Println(fig.Render())
		if *csv {
			fmt.Println(fig.RenderCSV())
		}
		if key == "msgrate" {
			// The same sweep again over the multiprocess TCP transport
			// (2 OS processes per point, loopback). Sim rows keep their
			// numeric keys; TCP rows take "tcpN" keys in the gate file.
			if err := tcpMsgRate(*quick, *csv); err != nil {
				fmt.Fprintln(os.Stderr, "progressbench: tcp msgrate:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *showMetrics || *traceOut != "" {
		if err := observe(bench.Options{Quick: *quick}, *showMetrics, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "progressbench:", err)
			os.Exit(1)
		}
		// Observability-only invocation: don't also run the (slow)
		// figure suite unless figures were asked for explicitly.
		figSet := false
		flag.Visit(func(f *flag.Flag) { figSet = figSet || f.Name == "fig" })
		if !figSet {
			return
		}
	}

	want := map[string]bool{}
	for _, tok := range strings.Split(*figs, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		switch tok {
		case "", "all":
			for _, r := range runners {
				want[r.key] = true
			}
		case "ablations":
			for _, r := range runners {
				if strings.HasPrefix(r.key, "ablation") {
					want[r.key] = true
				}
			}
		default:
			tok = strings.TrimPrefix(tok, "fig")
			want[tok] = true
		}
	}

	o := bench.Options{Quick: *quick}
	ran := 0
	for _, r := range runners {
		if !want[r.key] {
			continue
		}
		ran++
		fig := r.fn(o)
		fmt.Println(fig.Render())
		if *csv {
			fmt.Println(fig.RenderCSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figures matched %q; known: ", *figs)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, "%s ", r.key)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

// tcpMsgRate reruns the msgrate VCI sweep over the multiprocess TCP
// transport: for each point it relaunches this executable twice (rank
// 0 and rank 1) with the mpixrun environment contract and scans rank
// 0's output for the rate line. Results print as a table plus — with
// -csv — a benchjson-compatible CSV block keyed "tcp<V>".
func tcpMsgRate(quick, emitCSV bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	counts := []int{1, 2, 4, 8}
	runs := 3
	if quick {
		counts = []int{1, 2, 4}
		runs = 2
	}
	fmt.Println("== msgrate-tcp — aggregate small-message rate vs VCI count (2 OS processes, TCP loopback) ==")
	fmt.Printf("%8s %12s\n", "VCIs", "Mmsg/s")
	type row struct {
		v    int
		rate float64
	}
	rows := make([]row, 0, len(counts))
	for _, v := range counts {
		best := 0.0
		for r := 0; r < runs; r++ {
			rate, err := tcpMsgRateOnce(exe, v, quick)
			if err != nil {
				return err
			}
			if rate > best {
				best = rate
			}
		}
		fmt.Printf("%8d %12.3f\n", v, best/1e6)
		rows = append(rows, row{v, best})
	}
	if emitCSV {
		fmt.Println("x,tcp [Mmsg/s]")
		for _, r := range rows {
			fmt.Printf("tcp%d,%.3f\n", r.v, r.rate/1e6)
		}
		fmt.Println()
	}
	return nil
}

// tcpMsgRateOnce launches one 2-process measurement and returns rank
// 0's reported messages/second.
func tcpMsgRateOnce(exe string, vcis int, quick bool) (float64, error) {
	addrs, err := launch.FreePorts(2)
	if err != nil {
		return 0, err
	}
	job := launch.Info{WorldSize: 2, Addrs: addrs, Epoch: uint64(time.Now().UnixNano())}
	args := []string{"-workload", "msgrate", "-vcis", strconv.Itoa(vcis)}
	if quick {
		args = append(args, "-quick")
	}
	cmds := make([]*exec.Cmd, 2)
	var out0 bytes.Buffer
	for r := 0; r < 2; r++ {
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), job.Env(r)...)
		cmd.Stderr = os.Stderr
		if r == 0 {
			cmd.Stdout = &out0
		}
		if err := cmd.Start(); err != nil {
			if r == 1 {
				cmds[0].Process.Kill()
				cmds[0].Wait()
			}
			return 0, err
		}
		cmds[r] = cmd
	}
	var firstErr error
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %v", r, err)
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	sc := bufio.NewScanner(&out0)
	for sc.Scan() {
		var rate float64
		if _, err := fmt.Sscanf(sc.Text(), "tcp_msgrate_msgs_per_s %g", &rate); err == nil {
			return rate, nil
		}
	}
	return 0, fmt.Errorf("rank 0 reported no rate (vcis=%d)", vcis)
}

// observe runs the instrumented workload and emits whichever outputs
// were requested: the metrics snapshot on stdout, the Chrome trace to
// a file, or both.
func observe(o bench.Options, showMetrics bool, traceOut string) error {
	res := bench.Observe(o)
	if showMetrics {
		fmt.Println("== observability workload metrics ==")
		fmt.Print(res.Snap.String())
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, res.Events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", len(res.Events), traceOut)
	}
	return nil
}
