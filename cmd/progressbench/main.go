// progressbench regenerates the evaluation figures of "MPI Progress
// For All" (SC 2024) on the gompix simulated substrate.
//
// Usage:
//
//	progressbench                 # run everything (takes minutes)
//	progressbench -fig 7,13       # only Figures 7 and 13
//	progressbench -fig ablations  # only the ablation studies
//	progressbench -quick          # reduced sweeps
//	progressbench -csv            # additionally emit CSV blocks
//	progressbench -metrics        # observability workload, print metrics
//	progressbench -trace-out t.json  # ... and write a Chrome trace
//	progressbench -workload msgrate  # multi-VCI message-rate sweep
//	progressbench -workload cont     # callback vs poll completion rate
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gompix/internal/bench"
	"gompix/internal/launch"
	"gompix/internal/stats"
	"gompix/internal/trace"
)

var runners = []struct {
	key string
	fn  func(bench.Options) *stats.Figure
}{
	{"7", bench.Fig7},
	{"8", bench.Fig8},
	{"9", bench.Fig9},
	{"10", bench.Fig10},
	{"11", bench.Fig11},
	{"12", bench.Fig12},
	{"13", bench.Fig13},
	{"ablation-overlap", bench.AblationOverlap},
	{"ablation-progress-thread", bench.AblationProgressThread},
	{"ablation-threshold", bench.AblationThreshold},
	{"fault-recovery", bench.FaultRecovery},
}

// workloads are throughput sweeps selected with -workload; unlike the
// figure runners they are not part of the "all" set, since they are
// gates on engine performance rather than paper reproductions.
var workloads = map[string]func(bench.Options) *stats.Figure{
	"msgrate":  bench.MsgRate,
	"cont":     bench.ContRate,
	"eagersgd": bench.EagerSGD,
}

func main() {
	figs := flag.String("fig", "all", "comma-separated figure list (7..13), ablation names, 'ablations', or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	csv := flag.Bool("csv", false, "also emit CSV data blocks")
	showMetrics := flag.Bool("metrics", false, "run the observability workload and print the metrics snapshot")
	traceOut := flag.String("trace-out", "", "run the observability workload and write a Chrome trace_event JSON file (open in Perfetto)")
	workload := flag.String("workload", "", "run a throughput workload instead of the figure suite (msgrate, cont, eagersgd)")
	vcis := flag.Int("vcis", 0, "internal: VCI count when running as a launched msgrate rank")
	netKind := flag.String("net", "tcp", "internal: transport of a launched msgrate or eagersgd rank (tcp or shm)")
	sgdMode := flag.String("sgdmode", "eager", "internal: allreduce mode of a launched eagersgd rank (eager or sync)")
	sgdKill := flag.Bool("sgdkill", false, "internal: launched eagersgd chaos run — the last rank exits mid-training")
	sgdSeed := flag.Int64("sgdseed", 1000, "internal: spike-schedule seed of a launched eagersgd rank")
	flag.Parse()

	if *workload != "" {
		key := strings.ToLower(strings.TrimSpace(*workload))
		if launch.Launched() && key == "msgrate" {
			// One rank of the multiprocess sweep, spawned below.
			if err := bench.MsgRateLaunched(bench.Options{Quick: *quick}, *vcis, *netKind); err != nil {
				fmt.Fprintln(os.Stderr, "progressbench:", err)
				os.Exit(1)
			}
			return
		}
		if launch.Launched() && key == "eagersgd" {
			// One rank of the multiprocess training loop, spawned below.
			if err := bench.EagerSGDLaunched(bench.Options{Quick: *quick}, *netKind, *sgdMode, *sgdKill, *sgdSeed); err != nil {
				fmt.Fprintln(os.Stderr, "progressbench:", err)
				os.Exit(1)
			}
			return
		}
		fn, ok := workloads[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; known: ", *workload)
			for k := range workloads {
				fmt.Fprintf(os.Stderr, "%s ", k)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		fig := fn(bench.Options{Quick: *quick})
		fmt.Println(fig.Render())
		if *csv {
			switch key {
			case "cont":
				// Gate keys are "contcb"/"contpoll"; the generic CSV's
				// numeric x column would collide with the msgrate VCI keys.
				fmt.Println(bench.ContRateCSV(fig))
			case "eagersgd":
				// Same collision: gate keys are "eager4"/"sync4".
				fmt.Println(bench.EagerSGDCSV(fig))
			default:
				fmt.Println(fig.RenderCSV())
			}
		}
		if key == "eagersgd" {
			// The paired comparison again over the real multiprocess
			// transports, plus the kill-a-rank chaos scenario.
			if err := netEagerSGD([]string{"tcp", "shm"}, *quick, *csv); err != nil {
				fmt.Fprintln(os.Stderr, "progressbench: net eagersgd:", err)
				os.Exit(1)
			}
		}
		if key == "msgrate" {
			// The same sweep again over the real multiprocess transports
			// (2 OS processes per point): TCP loopback and the mmap
			// shared-memory transport (both ranks placed on one node, so
			// the composite routes everything through shm). Sim rows keep
			// their numeric keys; the multiprocess rows take
			// "tcpN"/"shmN" keys in the gate file.
			if err := netMsgRate([]string{"tcp", "shm"}, *quick, *csv); err != nil {
				fmt.Fprintln(os.Stderr, "progressbench: net msgrate:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *showMetrics || *traceOut != "" {
		if err := observe(bench.Options{Quick: *quick}, *showMetrics, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "progressbench:", err)
			os.Exit(1)
		}
		// Observability-only invocation: don't also run the (slow)
		// figure suite unless figures were asked for explicitly.
		figSet := false
		flag.Visit(func(f *flag.Flag) { figSet = figSet || f.Name == "fig" })
		if !figSet {
			return
		}
	}

	want := map[string]bool{}
	for _, tok := range strings.Split(*figs, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		switch tok {
		case "", "all":
			for _, r := range runners {
				want[r.key] = true
			}
		case "ablations":
			for _, r := range runners {
				if strings.HasPrefix(r.key, "ablation") {
					want[r.key] = true
				}
			}
		default:
			tok = strings.TrimPrefix(tok, "fig")
			want[tok] = true
		}
	}

	o := bench.Options{Quick: *quick}
	ran := 0
	for _, r := range runners {
		if !want[r.key] {
			continue
		}
		ran++
		fig := r.fn(o)
		fmt.Println(fig.Render())
		if *csv {
			fmt.Println(fig.RenderCSV())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no figures matched %q; known: ", *figs)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, "%s ", r.key)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

// netMsgRate reruns the msgrate VCI sweep over the real multiprocess
// transports: for each point it relaunches this executable twice (rank
// 0 and rank 1) with the mpixrun environment contract and scans rank
// 0's output for the rate line. netKind "tcp" runs loopback sockets;
// "shm" places both ranks on one node so the composite transport
// routes all traffic through the mmap shared-memory leg.
//
// The kinds are measured PAIRED: every repetition runs each transport
// back-to-back before the next repetition, so all kinds sample the
// same few seconds of machine state. The benchjson gate compares shm1
// against tcp1; on a shared host the background load drifts on a
// scale of minutes, and two sweeps run end-to-end would gate on the
// drift, not on the transports. Results print as per-kind tables plus
// — with -csv — benchjson-compatible CSV blocks keyed "<netKind><V>".
func netMsgRate(netKinds []string, quick, emitCSV bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	counts := []int{1, 2, 4, 8}
	runs := 3
	if quick {
		counts = []int{1, 2, 4}
		runs = 2
	}
	best := make(map[string][]float64, len(netKinds))
	for _, k := range netKinds {
		best[k] = make([]float64, len(counts))
	}
	for i, v := range counts {
		for r := 0; r < runs; r++ {
			for _, k := range netKinds {
				rate, err := netMsgRateRetry(exe, k, v, quick)
				if err != nil {
					return err
				}
				if rate > best[k][i] {
					best[k][i] = rate
				}
			}
		}
	}
	desc := map[string]string{
		"tcp": "TCP loopback",
		"shm": "mmap shared memory, one node",
	}
	for _, k := range netKinds {
		fmt.Printf("== msgrate-%s — aggregate small-message rate vs VCI count (2 OS processes, %s) ==\n", k, desc[k])
		fmt.Printf("%8s %12s\n", "VCIs", "Mmsg/s")
		for i, v := range counts {
			fmt.Printf("%8d %12.3f\n", v, best[k][i]/1e6)
		}
		if emitCSV {
			fmt.Printf("x,%s [Mmsg/s]\n", k)
			for i, v := range counts {
				fmt.Printf("%s%d,%.3f\n", k, v, best[k][i]/1e6)
			}
			fmt.Println()
		}
	}
	return nil
}

// netMsgRateRetry wraps netMsgRateOnce with the same flake budget as
// the eagersgd driver: on an oversubscribed shared host a child rank
// descheduled across the dial window can read as unreachable, error
// out, and — because a graceful departure leaves no verdict — strand
// its peer in the startup barrier until the watchdog fires. Retry the
// transient casualty; persistent failures still surface as the last
// error after three attempts.
func netMsgRateRetry(exe, netKind string, vcis int, quick bool) (float64, error) {
	var rate float64
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		rate, err = netMsgRateOnce(exe, netKind, vcis, quick)
		if err == nil {
			return rate, nil
		}
		fmt.Fprintf(os.Stderr, "progressbench: msgrate %s/%d attempt %d: %v (retrying)\n",
			netKind, vcis, attempt+1, err)
	}
	return rate, err
}

// netMsgRateOnce launches one 2-process measurement and returns rank
// 0's reported messages/second.
func netMsgRateOnce(exe, netKind string, vcis int, quick bool) (float64, error) {
	addrs, err := launch.FreePorts(2)
	if err != nil {
		return 0, err
	}
	job := launch.Info{WorldSize: 2, Addrs: addrs, Epoch: uint64(time.Now().UnixNano())}
	if netKind == "shm" {
		job.Nodes = []int{0, 0} // co-located: the composite routes over shm
	}
	args := []string{"-workload", "msgrate", "-vcis", strconv.Itoa(vcis), "-net", netKind}
	if quick {
		args = append(args, "-quick")
	}
	cmds := make([]*exec.Cmd, 2)
	var out0 bytes.Buffer
	for r := 0; r < 2; r++ {
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), job.Env(r)...)
		cmd.Stderr = os.Stderr
		if r == 0 {
			cmd.Stdout = &out0
		}
		if err := cmd.Start(); err != nil {
			if r == 1 {
				cmds[0].Process.Kill()
				cmds[0].Wait()
			}
			return 0, err
		}
		cmds[r] = cmd
	}
	// Watchdog + error attribution: same shape as the eagersgd driver —
	// a hung child must fail the measurement (and get retried), not
	// wedge the whole bench pipeline, and when one rank errors out and
	// its peer consequently hangs until the dog fires, the peer's
	// "signal: killed" is a symptom, not the diagnosis.
	var dogFired atomic.Bool
	dog := time.AfterFunc(2*time.Minute, func() {
		dogFired.Store(true)
		for _, c := range cmds {
			c.Process.Kill()
		}
	})
	defer dog.Stop()
	var firstErr, firstKilled error
	for r, cmd := range cmds {
		err := cmd.Wait()
		if err == nil {
			continue
		}
		ee, ok := err.(*exec.ExitError)
		if ok && !ee.Exited() && dogFired.Load() {
			if firstKilled == nil {
				firstKilled = fmt.Errorf("rank %d: hung until the watchdog: %v", r, err)
			}
		} else if firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %v", r, err)
		}
	}
	if firstErr == nil {
		firstErr = firstKilled
	}
	if firstErr != nil {
		return 0, firstErr
	}
	sc := bufio.NewScanner(&out0)
	for sc.Scan() {
		var rate float64
		if _, err := fmt.Sscanf(sc.Text(), netKind+"_msgrate_msgs_per_s %g", &rate); err == nil {
			return rate, nil
		}
	}
	return 0, fmt.Errorf("rank 0 reported no rate (net=%s vcis=%d)", netKind, vcis)
}

// netEagerSGD reruns the eager-vs-sync SGD comparison over the real
// multiprocess transports (bench.SGDWorld OS processes per point) and
// then runs the kill-a-rank chaos scenario: an eager TCP training run
// in which the last rank dies mid-loop (exit code 7, the scripted
// casualty) and the survivors must still finish and report a rate.
//
// Like netMsgRate, the modes are measured PAIRED — each repetition
// runs eager and sync back-to-back with the same spike seed on each
// transport — so the eager4-vs-sync4 style gate compares collectives,
// not machine drift. CSV keys: eagertcp4/synctcp4/eagershm4/syncshm4.
func netEagerSGD(netKinds []string, quick, emitCSV bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	modes := []string{"eager", "sync"}
	runs := 3
	if quick {
		runs = 2
	}
	best := map[string]float64{}
	for r := 0; r < runs; r++ {
		seed := int64(2000 + 91*r)
		for _, k := range netKinds {
			for _, mode := range modes {
				rate, err := netEagerSGDRetry(exe, k, mode, false, quick, seed)
				if err != nil {
					return err
				}
				if key := mode + k; rate > best[key] {
					best[key] = rate
				}
			}
		}
	}
	for _, k := range netKinds {
		fmt.Printf("== eagersgd-%s — SGD steps/s under compute spikes (%d OS processes) ==\n", k, bench.SGDWorld)
		fmt.Printf("%8s %12s\n", "mode", "steps/s")
		for _, mode := range modes {
			fmt.Printf("%8s %12.3f\n", mode, best[mode+k])
		}
	}
	if emitCSV {
		fmt.Println("x,eagersgd [steps/s]")
		for _, k := range netKinds {
			for _, mode := range modes {
				fmt.Printf("%s%s%d,%.3f\n", mode, k, bench.SGDWorld, best[mode+k])
			}
		}
		fmt.Println()
	}
	rate, err := netEagerSGDRetry(exe, "tcp", "eager", true, quick, 31)
	if err != nil {
		return fmt.Errorf("kill scenario: %w", err)
	}
	fmt.Printf("== eagersgd kill scenario — rank %d dies mid-training, survivors continue ==\n", bench.SGDWorld-1)
	fmt.Printf("survivors' rate: %.3f steps/s\n", rate)
	return nil
}

// netEagerSGDRetry wraps netEagerSGDOnce with a flake budget: spawning
// bench.SGDWorld processes on an oversubscribed shared host can
// occasionally misfire at startup (a rank descheduled across the dial
// window reads as unreachable), and a measurement pipeline should
// retry a transient casualty rather than abandon the whole gate run.
// Persistent failures still surface — the last error after three
// attempts.
func netEagerSGDRetry(exe, netKind, mode string, kill, quick bool, seed int64) (float64, error) {
	var rate float64
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		rate, err = netEagerSGDOnce(exe, netKind, mode, kill, quick, seed)
		if err == nil {
			return rate, nil
		}
		fmt.Fprintf(os.Stderr, "progressbench: eagersgd %s/%s attempt %d: %v (retrying)\n",
			netKind, mode, attempt+1, err)
	}
	return rate, err
}

// netEagerSGDOnce launches one multiprocess training measurement and
// returns rank 0's reported steps/second. With kill set, the last rank
// is expected to die with exit code 7 mid-run; any other exit from it
// (including a clean one) is an error.
func netEagerSGDOnce(exe, netKind, mode string, kill, quick bool, seed int64) (float64, error) {
	n := bench.SGDWorld
	addrs, err := launch.FreePorts(n)
	if err != nil {
		return 0, err
	}
	job := launch.Info{WorldSize: n, Addrs: addrs, Epoch: uint64(time.Now().UnixNano())}
	if netKind == "shm" {
		job.Nodes = make([]int, n) // all co-located: traffic routes over shm
	}
	args := []string{
		"-workload", "eagersgd", "-net", netKind,
		"-sgdmode", mode, "-sgdseed", strconv.FormatInt(seed, 10),
	}
	if kill {
		args = append(args, "-sgdkill")
	}
	if quick {
		args = append(args, "-quick")
	}
	cmds := make([]*exec.Cmd, n)
	var out0 bytes.Buffer
	for r := 0; r < n; r++ {
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), job.Env(r)...)
		cmd.Stderr = os.Stderr
		if r == 0 {
			cmd.Stdout = &out0
		}
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
				c.Wait()
			}
			return 0, err
		}
		cmds[r] = cmd
	}
	// Watchdog: a hung scenario (the exact regression this workload
	// exists to catch) must fail the run, not wedge the bench pipeline.
	var dogFired atomic.Bool
	dog := time.AfterFunc(2*time.Minute, func() {
		dogFired.Store(true)
		for _, c := range cmds {
			c.Process.Kill()
		}
	})
	defer dog.Stop()
	// Prefer a rank's own failure over a watchdog kill: when one rank
	// errors out and a peer consequently hangs until the dog fires, the
	// peer's "signal: killed" is a symptom — the erroring rank is the
	// diagnosis.
	var firstErr, firstKilled error
	for r, cmd := range cmds {
		err := cmd.Wait()
		switch {
		case kill && r == n-1:
			ee, ok := err.(*exec.ExitError)
			if err == nil || !ok || ee.ExitCode() != 7 {
				if firstErr == nil {
					firstErr = fmt.Errorf("victim rank %d exited %v; want the scripted exit 7", r, err)
				}
			}
		case err != nil:
			ee, ok := err.(*exec.ExitError)
			if ok && !ee.Exited() && dogFired.Load() {
				if firstKilled == nil {
					firstKilled = fmt.Errorf("rank %d: hung until the watchdog: %v", r, err)
				}
			} else if firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %v", r, err)
			}
		}
	}
	if firstErr == nil {
		firstErr = firstKilled
	}
	if firstErr != nil {
		return 0, firstErr
	}
	sc := bufio.NewScanner(&out0)
	for sc.Scan() {
		var rate float64
		if _, err := fmt.Sscanf(sc.Text(), netKind+"_"+mode+"_eagersgd_steps_per_s %g", &rate); err == nil {
			return rate, nil
		}
	}
	return 0, fmt.Errorf("rank 0 reported no rate (net=%s mode=%s kill=%v)", netKind, mode, kill)
}

// observe runs the instrumented workload and emits whichever outputs
// were requested: the metrics snapshot on stdout, the Chrome trace to
// a file, or both.
func observe(o bench.Options, showMetrics bool, traceOut string) error {
	res := bench.Observe(o)
	if showMetrics {
		fmt.Println("== observability workload metrics ==")
		fmt.Print(res.Snap.String())
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, res.Events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", len(res.Events), traceOut)
	}
	return nil
}
