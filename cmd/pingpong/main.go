// pingpong is an osu_latency/osu_bw-style micro-benchmark: per-size
// round-trip latency and streaming bandwidth, on any transport. It
// exercises every message mode of the paper's Figure 1 as the size
// sweep crosses the protocol thresholds.
//
// Usage:
//
//	pingpong                 # latency sweep, simulated inter-node fabric
//	pingpong -shm            # same-node (shared-memory transport)
//	pingpong -bw             # streaming bandwidth instead of latency
//	pingpong -iters 2000     # samples per size
//
// Under mpixrun it runs as one OS process per rank over TCP loopback,
// ranks pairing up (0-1, 2-3, ...); each even rank reports its pair:
//
//	mpixrun -n 4 ./cmd/pingpong -iters 100
package main

import (
	"flag"
	"fmt"
	"os"

	"gompix/internal/mpi"
	"gompix/internal/stats"
	"gompix/mpix"
)

func main() {
	shm := flag.Bool("shm", false, "same-node shared-memory transport")
	bw := flag.Bool("bw", false, "measure streaming bandwidth instead of latency")
	iters := flag.Int("iters", 500, "iterations per message size")
	window := flag.Int("window", 16, "in-flight messages per bandwidth window")
	flag.Parse()

	sizes := []int{0, 1, 8, 64, 256, 1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024}

	var w *mpix.World
	transport := "netmod (inter-node)"
	if mpix.Launched() {
		var err error
		w, err = mpix.NewWorldFromEnv()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pingpong: %v\n", err)
			os.Exit(1)
		}
		transport = "tcp (multiprocess)"
	} else {
		perNode := 1
		if *shm {
			perNode = 2
			transport = "shmem (same-node)"
		}
		w = mpix.NewWorld(mpix.WithRanks(2), mpix.WithProcsPerNode(perNode))
	}
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		// Ranks pair up: 0-1, 2-3, ... With an odd world size the last
		// rank has no partner and only joins the barriers.
		peer := p.Rank() ^ 1
		idle := peer >= p.Size()
		if p.Rank() == 0 {
			mode := "latency"
			if *bw {
				mode = "bandwidth"
			}
			fmt.Printf("# gompix pingpong — %s, %s, %d ranks, %d iters\n", mode, transport, p.Size(), *iters)
			if *bw {
				fmt.Printf("%12s %14s\n", "bytes", "MB/s")
			} else {
				fmt.Printf("%12s %12s %12s %12s\n", "bytes", "p50 us", "mean us", "p99 us")
			}
		}
		for _, size := range sizes {
			buf := make([]byte, size)
			comm.Barrier()
			if idle {
				continue
			}
			if *bw {
				runBandwidth(p, comm, peer, buf, *iters, *window)
			} else {
				runLatency(p, comm, peer, buf, *iters)
			}
		}
	})
}

func runLatency(p *mpi.Proc, comm *mpi.Comm, peer int, buf []byte, iters int) {
	sum := stats.NewSummary(0)
	lead := p.Rank()%2 == 0 // even rank drives and reports its pair
	for i := 0; i < iters; i++ {
		if lead {
			t0 := p.Wtime()
			comm.SendBytes(buf, peer, 0)
			comm.RecvBytes(buf, peer, 0)
			sum.Add((p.Wtime() - t0) * 1e6 / 2)
		} else {
			comm.RecvBytes(buf, peer, 0)
			comm.SendBytes(buf, peer, 0)
		}
	}
	if lead {
		fmt.Printf("%12d %12.3f %12.3f %12.3f\n",
			len(buf), sum.Median(), sum.Mean(), sum.Percentile(99))
	}
}

func runBandwidth(p *mpi.Proc, comm *mpi.Comm, peer int, buf []byte, iters, window int) {
	lead := p.Rank()%2 == 0 // even rank drives and reports its pair
	if len(buf) == 0 {
		if lead {
			fmt.Printf("%12d %14s\n", 0, "-")
		}
		return
	}
	rounds := iters / window
	if rounds == 0 {
		rounds = 1
	}
	var elapsed float64
	for r := 0; r < rounds; r++ {
		if lead {
			t0 := p.Wtime()
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = comm.IsendBytes(buf, peer, 1)
			}
			mpi.WaitAll(reqs...)
			ackBuf := make([]byte, 1)
			comm.RecvBytes(ackBuf, peer, 2)
			elapsed += p.Wtime() - t0
		} else {
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = comm.IrecvBytes(buf, peer, 1)
			}
			mpi.WaitAll(reqs...)
			comm.SendBytes([]byte{1}, peer, 2)
		}
	}
	if lead {
		bytes := float64(len(buf)) * float64(window) * float64(rounds)
		fmt.Printf("%12d %14.1f\n", len(buf), bytes/elapsed/1e6)
	}
}
