// pingpong is an osu_latency/osu_bw-style micro-benchmark over the
// simulated fabric: per-size round-trip latency and streaming
// bandwidth, on either transport. It exercises every message mode of
// the paper's Figure 1 as the size sweep crosses the protocol
// thresholds.
//
// Usage:
//
//	pingpong                 # latency sweep, inter-node
//	pingpong -shm            # same-node (shared-memory transport)
//	pingpong -bw             # streaming bandwidth instead of latency
//	pingpong -iters 2000     # samples per size
package main

import (
	"flag"
	"fmt"

	"gompix/internal/mpi"
	"gompix/internal/stats"
	"gompix/mpix"
)

func main() {
	shm := flag.Bool("shm", false, "same-node shared-memory transport")
	bw := flag.Bool("bw", false, "measure streaming bandwidth instead of latency")
	iters := flag.Int("iters", 500, "iterations per message size")
	window := flag.Int("window", 16, "in-flight messages per bandwidth window")
	flag.Parse()

	perNode := 1
	if *shm {
		perNode = 2
	}
	sizes := []int{0, 1, 8, 64, 256, 1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024}

	w := mpix.NewWorld(mpix.Config{Procs: 2, ProcsPerNode: perNode})
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		if p.Rank() == 0 {
			transport := "netmod (inter-node)"
			if *shm {
				transport = "shmem (same-node)"
			}
			mode := "latency"
			if *bw {
				mode = "bandwidth"
			}
			fmt.Printf("# gompix pingpong — %s, %s, %d iters\n", mode, transport, *iters)
			if *bw {
				fmt.Printf("%12s %14s\n", "bytes", "MB/s")
			} else {
				fmt.Printf("%12s %12s %12s %12s\n", "bytes", "p50 us", "mean us", "p99 us")
			}
		}
		for _, size := range sizes {
			buf := make([]byte, size)
			comm.Barrier()
			if *bw {
				runBandwidth(p, comm, peer, buf, *iters, *window)
			} else {
				runLatency(p, comm, peer, buf, *iters)
			}
		}
	})
}

func runLatency(p *mpi.Proc, comm *mpi.Comm, peer int, buf []byte, iters int) {
	sum := stats.NewSummary(0)
	for i := 0; i < iters; i++ {
		if p.Rank() == 0 {
			t0 := p.Wtime()
			comm.SendBytes(buf, peer, 0)
			comm.RecvBytes(buf, peer, 0)
			sum.Add((p.Wtime() - t0) * 1e6 / 2)
		} else {
			comm.RecvBytes(buf, peer, 0)
			comm.SendBytes(buf, peer, 0)
		}
	}
	if p.Rank() == 0 {
		fmt.Printf("%12d %12.3f %12.3f %12.3f\n",
			len(buf), sum.Median(), sum.Mean(), sum.Percentile(99))
	}
}

func runBandwidth(p *mpi.Proc, comm *mpi.Comm, peer int, buf []byte, iters, window int) {
	if len(buf) == 0 {
		if p.Rank() == 0 {
			fmt.Printf("%12d %14s\n", 0, "-")
		}
		return
	}
	rounds := iters / window
	if rounds == 0 {
		rounds = 1
	}
	var elapsed float64
	for r := 0; r < rounds; r++ {
		if p.Rank() == 0 {
			t0 := p.Wtime()
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = comm.IsendBytes(buf, peer, 1)
			}
			mpi.WaitAll(reqs...)
			ackBuf := make([]byte, 1)
			comm.RecvBytes(ackBuf, peer, 2)
			elapsed += p.Wtime() - t0
		} else {
			reqs := make([]*mpi.Request, window)
			for i := range reqs {
				reqs[i] = comm.IrecvBytes(buf, peer, 1)
			}
			mpi.WaitAll(reqs...)
			comm.SendBytes([]byte{1}, peer, 2)
		}
	}
	if p.Rank() == 0 {
		bytes := float64(len(buf)) * float64(window) * float64(rounds)
		fmt.Printf("%12d %14.1f\n", len(buf), bytes/elapsed/1e6)
	}
}
