// msgmodes regenerates the content of the paper's Figures 1-3: it runs
// one message per mode (buffered eager, eager, rendezvous, pipelined
// rendezvous) and per arrival order (expected / unexpected) over the
// simulated NIC, traces the protocol milestones, and prints per-mode
// timelines plus the implied wait-block counts.
package main

import (
	"fmt"
	"time"

	"gompix/internal/fabric"
	"gompix/internal/mpi"
	"gompix/internal/trace"
)

type scenario struct {
	name       string
	bytes      int
	unexpected bool // send fires before the receive is posted
	sendWaits  int  // expected sender-side wait blocks
}

func main() {
	scenarios := []scenario{
		{"buffered eager send, expected recv (Fig 1a/1e)", 64, false, 0},
		{"eager send, unexpected recv (Fig 1b/1d)", 8 * 1024, true, 1},
		{"rendezvous send, expected recv (Fig 1c/1f)", 128 * 1024, false, 2},
		{"pipelined rendezvous, expected recv (§2.1 pipeline mode)", 512 * 1024, false, 2},
	}
	for _, sc := range scenarios {
		rec := trace.NewRecorder()
		runScenario(sc, rec)
		fmt.Printf("== %s (%d bytes) ==\n", sc.name, sc.bytes)
		fmt.Print(trace.Render(rec.Events()))
		fmt.Printf("sender wait blocks (CQ polls): %d\n", rec.WaitBlocks(0))
		fmt.Printf("data chunks: %d\n\n", rec.CountCat("nic.cq"))
	}
}

func runScenario(sc scenario, rec *trace.Recorder) {
	w := mpi.NewWorld(mpi.Config{
		Procs:        2,
		ProcsPerNode: 1,
		Fabric: fabric.Config{
			Latency:              3 * time.Microsecond,
			BandwidthBytesPerSec: 10e9,
		},
		Tracer: rec.Sink(),
	})
	w.Run(func(p *mpi.Proc) {
		comm := p.CommWorld()
		buf := make([]byte, sc.bytes)
		if p.Rank() == 0 {
			comm.SendBytes(buf, 1, 0)
			return
		}
		if sc.unexpected {
			// Let the message arrive before posting the receive.
			deadline := p.Wtime() + 0.001
			for p.Wtime() < deadline {
				p.Progress()
			}
		}
		comm.RecvBytes(buf, 0, 0)
	})
}
