module gompix

go 1.22
