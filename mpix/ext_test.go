package mpix_test

import (
	"testing"
	"time"

	"gompix/mpix"
)

func TestFacadeWindow(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 2}, func(p *mpix.Proc) {
		base := make([]byte, 16)
		w := mpix.WinCreate(p.CommWorld(), base)
		if p.Rank() == 0 {
			w.Put([]byte{1, 2, 3}, 1, 4)
		}
		if err := w.Fence(); err != nil {
			t.Errorf("fence: %v", err)
		}
		if p.Rank() == 1 && base[4] != 1 {
			t.Errorf("put missing: %v", base)
		}
		// Range error surfaces the exported sentinel.
		w.Put(make([]byte, 32), 1-p.Rank(), 0)
		if err := w.Fence(); err != mpix.ErrRMARange {
			t.Errorf("err = %v, want ErrRMARange", err)
		}
		w.Free()
	})
}

func TestFacadeFutures(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 1}, func(p *mpix.Proc) {
		e := mpix.NewExecutor(p, nil)
		pr, f := mpix.NewPromise()
		done := mpix.WhenAll(f, e.After(time.Millisecond))
		pr.Resolve("x")
		if _, err := e.Await(done); err != nil {
			t.Errorf("await: %v", err)
		}
		first := mpix.WhenAny(f)
		if !first.Done() {
			t.Error("WhenAny over a resolved future should be done")
		}
	})
}

func TestFacadeSchedule(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 1}, func(p *mpix.Proc) {
		s := mpix.NewSchedule(p, nil)
		ran := false
		s.AddOperation(mpix.ScheduleLocal(func() { ran = true }))
		s.Commit().Wait()
		if !ran {
			t.Error("schedule op never ran")
		}
	})
}

func TestFacadeDevice(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 1}, func(p *mpix.Proc) {
		dev := mpix.NewDevice(p, mpix.DeviceConfig{LaunchOverhead: 50 * time.Microsecond})
		q := dev.NewQueue()
		p.AsyncStart(q.AsyncPoll(nil), nil, nil)
		dst := make([]byte, 4)
		op := q.EnqueueCopy(dst, []byte{9, 8, 7, 6})
		for !op.IsComplete() {
			p.Progress()
		}
		if dst[0] != 9 || dst[3] != 6 {
			t.Errorf("copy = %v", dst)
		}
	})
}

func TestFacadePersistentAndSplit(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 4}, func(p *mpix.Proc) {
		comm := p.CommWorld()
		sub := comm.Split(p.Rank()%2, 0)
		if sub.Size() != 2 {
			t.Errorf("split size %d", sub.Size())
		}
		peer := 1 - sub.Rank()
		buf := make([]byte, 1)
		var preq *mpix.PersistentRequest
		if sub.Rank() == 0 {
			preq = sub.SendInit([]byte{42}, 1, mpix.Byte, peer, 0)
		} else {
			preq = sub.RecvInit(buf, 1, mpix.Byte, peer, 0)
		}
		for i := 0; i < 3; i++ {
			preq.Start()
			preq.Wait()
			if sub.Rank() == 1 && buf[0] != 42 {
				t.Errorf("round %d: %v", i, buf)
			}
		}
	})
}

func TestFacadeTrace(t *testing.T) {
	// Peek + probe via the facade.
	runWorld(t, mpix.Config{Procs: 2}, func(p *mpix.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.SendBytes([]byte{1}, 1, 3)
			return
		}
		st := comm.Probe(0, 3)
		if st.Bytes != 1 {
			t.Errorf("probe %+v", st)
		}
		if _, ok := comm.Peek(0, 3); !ok {
			t.Error("Peek should see the buffered message")
		}
		comm.RecvBytes(make([]byte, 1), 0, 3)
	})
}
