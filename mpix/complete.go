package mpix

import "gompix/internal/mpi"

// Completion model
//
// Every way of observing a completion in gompix reduces to one of
// three idioms, all built on the same MPIX Continue machinery
// (DESIGN.md §13):
//
//  1. Blocking waits — Request.Wait, WaitAll, WaitAny, Request.WaitCtx,
//     Request.WaitDeadline. One goroutine drives progress until the
//     operation(s) complete. Simple, right for a handful of requests.
//
//  2. Polling — Request.Test, Request.IsComplete, TestAll, TestAny.
//     Non-blocking observation; IsComplete is a single atomic load
//     (the paper's MPIX_Request_is_complete) safe inside poll
//     functions.
//
//  3. Continuations — Request.OnComplete, Request.Done, and
//     ContinueRequest for aggregating sets. The callback executes
//     inside a progress pass of the owning stream, never inline in a
//     transport drain and never on the registering goroutine, so
//     thousands of in-flight operations need no goroutine each (see
//     examples/contserver). Done bridges a completion into a channel
//     for select loops:
//
//	select {
//	case st := <-req.Done():
//	    use(st)
//	case <-ctx.Done():
//	    req.Cancel()
//	}
//
// Continuations observe failures the same way waits do: a continuation
// on an operation whose peer died or whose communicator was revoked
// fires with Status.Err wrapping ErrProcFailed / carrying
// ErrCommRevoked (see errors.go) — callbacks never leak on faults.
//
// Whatever the idiom, someone must drive progress: a blocked waiter, an
// application progress loop, or Proc.ProgressThread.

// ContFlag adjusts continuation registration (the MPIX_CONT_* flags);
// pass to Proc.ContinueInit or per ContinueRequest.Continue call.
type ContFlag = mpi.ContFlag

const (
	// ContDefer forces even an already-complete operation's callback
	// through the stream's run-queue instead of running it inline at
	// registration (MPIX_CONT_DEFER_COMPLETE).
	ContDefer = mpi.ContDefer
	// ContFailFast completes the aggregate as soon as any registered
	// operation fails, carrying the first error.
	ContFailFast = mpi.ContFailFast
)
