// Package mpix is the public API of gompix: a pure-Go reproduction of
// the MPI progress extensions proposed in "MPI Progress For All"
// (Zhou, Latham, Raffenetti, Guo, Thakur — SC 2024), together with the
// simulated MPI runtime they run on.
//
// The paper's extension surface maps to Go as follows:
//
//	MPIX_Stream_create        Proc.StreamCreate
//	MPIX_Stream_free          Proc.StreamFree
//	MPIX_Stream_comm_create   Comm.StreamComm
//	MPIX_Stream_progress      Proc.StreamProgress / Proc.Progress
//	MPIX_Async_start          Proc.AsyncStart
//	MPIX_Async_get_state      Thing.State
//	MPIX_Async_spawn          Thing.Spawn
//	MPIX_ASYNC_DONE           Done
//	MPIX_ASYNC_NOPROGRESS     NoProgress
//	MPIX_Request_is_complete  Request.IsComplete
//	MPI_Grequest_start        Proc.GrequestStart
//	MPI_Grequest_complete     Request.GrequestComplete
//	MPIX_Continue_init        Proc.ContinueInit / Proc.ContinueInitOn
//	MPIX_Continue             ContinueRequest.Continue
//	MPIX_Continueall          ContinueRequest.ContinueAll
//	MPIX_CONT_DEFER_COMPLETE  ContDefer
//
// Completion observation beyond wait/test — OnComplete callbacks, Done
// channels, continuation aggregation — is documented in complete.go
// (the completion model).
//
// A minimal program:
//
//	w := mpix.NewWorld(mpix.Config{Procs: 2})
//	w.Run(func(p *mpix.Proc) {
//		comm := p.CommWorld()
//		if p.Rank() == 0 {
//			comm.SendBytes([]byte("hi"), 1, 0)
//		} else {
//			buf := make([]byte, 2)
//			comm.RecvBytes(buf, 0, 0)
//		}
//	})
package mpix

import (
	"gompix/internal/core"
	"gompix/internal/datatype"
	"gompix/internal/fabric"
	"gompix/internal/metrics"
	"gompix/internal/mpi"
	"gompix/internal/reduceop"
	"gompix/internal/trace"
)

// World hosts N simulated MPI ranks inside one process.
type World = mpi.World

// Config describes a World; see the field docs in the mpi package.
type Config = mpi.Config

// FabricConfig describes the simulated interconnect.
type FabricConfig = fabric.Config

// Proc is one MPI rank.
type Proc = mpi.Proc

// Comm is a communicator.
type Comm = mpi.Comm

// Request is an MPI request handle; Request.IsComplete is the paper's
// MPIX_Request_is_complete.
type Request = mpi.Request

// Status describes a completed operation.
type Status = mpi.Status

// ContinueRequest aggregates completion callbacks (MPIX Continue): it
// completes when every continuation registered on it has executed, and
// is itself waitable/testable, so continuation graphs compose. See
// complete.go for the completion model and ContFlag for the
// registration flags.
type ContinueRequest = mpi.ContinueRequest

// PersistentRequest is a reusable send/receive handle
// (MPI_Send_init / MPI_Recv_init / MPI_Start).
type PersistentRequest = mpi.PersistentRequest

// RelaxedRequest is the handle of a relaxed (solo/partial) allreduce
// started with Comm.IallreduceRelaxed: a nonblocking allreduce that
// settles on the first quorum of contributions, abandoning stragglers
// past a staleness bound, with Result reporting exactly whose data is
// in (the eager-SGD collective).
type RelaxedRequest = mpi.RelaxedRequest

// RelaxedOptions tunes Comm.IallreduceRelaxed (quorum, staleness
// grace, round-lag window).
type RelaxedOptions = mpi.RelaxedOptions

// Stream is an MPIX stream: a serial progress context.
type Stream = core.Stream

// Thing is the opaque handle passed to async poll functions
// (MPIX_Async_thing).
type Thing = core.Thing

// PollFunc is an async progress hook (MPIX_Async_poll_function).
type PollFunc = core.PollFunc

// PollOutcome is a poll function's result.
type PollOutcome = core.PollOutcome

// Poll outcomes (MPIX_ASYNC_NOPROGRESS / MPIX_ASYNC_DONE; Progressed is
// the "advanced but not finished" middle ground).
const (
	NoProgress = core.NoProgress
	Progressed = core.Progressed
	Done       = core.Done
)

// Datatype describes a memory layout.
type Datatype = datatype.Datatype

// Predefined datatypes.
var (
	Byte    = datatype.Byte
	Int32   = datatype.Int32
	Int64   = datatype.Int64
	Uint64  = datatype.Uint64
	Float32 = datatype.Float32
	Float64 = datatype.Float64
)

// Derived datatype constructors.
var (
	Contiguous = datatype.Contiguous
	Vector     = datatype.Vector
	Indexed    = datatype.Indexed
	StructType = datatype.StructType
	Resized    = datatype.Resized
)

// Op is a reduction operator.
type Op = reduceop.Op

// Predefined reduction operators.
const (
	OpSum  = reduceop.Sum
	OpProd = reduceop.Prod
	OpMin  = reduceop.Min
	OpMax  = reduceop.Max
	OpLAnd = reduceop.LAnd
	OpLOr  = reduceop.LOr
	OpBAnd = reduceop.BAnd
	OpBOr  = reduceop.BOr
	OpBXor = reduceop.BXor
)

// Wildcards for receives and probes.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Completion error classes (ErrTruncate, ErrTimedOut, ErrLinkDown)
// live in errors.go together with their wrapping rules.

// Fault injection: a FaultConfig on FabricConfig.Faults makes the
// simulated interconnect lossy (packet drops, duplication, delay
// spikes, scheduled partitions), all deterministically seeded. Any
// active fault schedule auto-enables the netmod reliability protocol
// (Config.Reliable).
type (
	// FaultConfig is the fabric's fault schedule.
	FaultConfig = fabric.FaultConfig
	// LinkFaults overrides fault probabilities on one directed link.
	LinkFaults = fabric.LinkFaults
	// FaultLink names a directed endpoint pair in FaultConfig.Links.
	FaultLink = fabric.Link
	// Partition is a scheduled link outage between nodes.
	Partition = fabric.Partition
	// FaultStats counts the faults a Network has injected.
	FaultStats = fabric.FaultStats
)

// NewWorld creates an MPI job. Configure it with functional options —
//
//	mpix.NewWorld(mpix.WithRanks(4), mpix.WithReliable())
//
// — or with a full Config value, which is itself an Option (the
// documented compatibility path; it replaces the whole configuration,
// so pass it first):
//
//	mpix.NewWorld(mpix.Config{Procs: 4, Reliable: true})
//
// Without WithTransport the world simulates all ranks in this process
// over the simulated fabric. For multiprocess jobs see Launched and
// NewWorldFromEnv.
func NewWorld(opts ...Option) *World {
	var cfg mpi.Config
	for _, o := range opts {
		o.ApplyWorldOption(&cfg)
	}
	return mpi.NewWorld(cfg)
}

// WaitAll waits for every request (MPI_Waitall).
func WaitAll(reqs ...*Request) []Status { return mpi.WaitAll(reqs...) }

// TestAll reports whether all requests completed (MPI_Testall).
func TestAll(reqs ...*Request) bool { return mpi.TestAll(reqs...) }

// WaitAny waits for the first completion (MPI_Waitany).
func WaitAny(reqs ...*Request) (int, Status) { return mpi.WaitAny(reqs...) }

// TestAny reports the first completed request (MPI_Testany).
func TestAny(reqs ...*Request) (int, Status, bool) { return mpi.TestAny(reqs...) }

// EncodeInt32s / DecodeInt32s and friends convert between Go slices and
// the little-endian byte buffers the communication API uses.
var (
	EncodeInt32s   = reduceop.EncodeInt32s
	DecodeInt32s   = reduceop.DecodeInt32s
	EncodeInt64s   = reduceop.EncodeInt64s
	DecodeInt64s   = reduceop.DecodeInt64s
	EncodeFloat64s = reduceop.EncodeFloat64s
	DecodeFloat64s = reduceop.DecodeFloat64s
)

// WithName names a stream (diagnostics).
var WithName = core.WithName

// Observability: pass a MetricsRegistry as Config.Metrics to wire
// every runtime layer (progress engine, matching, NIC, reliability,
// fabric) with low-overhead counters, gauges, and log2 histograms —
// off until Enable() is called. Pass a TraceRecorder's Sink() as
// Config.Tracer to capture protocol milestone events; WriteChromeTrace
// renders them as a Chrome trace_event file for Perfetto.
type (
	// MetricsRegistry holds named counters, gauges, and histograms.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = metrics.Snapshot
	// TraceRecorder accumulates trace events from running ranks.
	TraceRecorder = trace.Recorder
	// TraceEvent is one protocol milestone.
	TraceEvent = trace.Event
)

var (
	// NewMetrics returns an empty, disabled metrics registry.
	NewMetrics = metrics.New
	// MetricsDiff subtracts two snapshots (counters and histograms
	// delta; gauges keep their "after" values).
	MetricsDiff = metrics.Diff
	// NewTraceRecorder returns an empty trace recorder.
	NewTraceRecorder = trace.NewRecorder
	// WriteChromeTrace writes events as Chrome trace_event JSON.
	WriteChromeTrace = trace.WriteChromeTrace
	// ChromeTraceJSON renders events as Chrome trace_event JSON bytes.
	ChromeTraceJSON = trace.ChromeTraceJSON
)
