package mpix

import (
	"gompix/internal/mpi"
	"gompix/internal/transport"
)

// Option configures NewWorld. The functional options below cover the
// common knobs; a full Config value is itself an Option (it replaces
// the entire configuration, so pass it first — or alone — and layer
// finer options after it). Existing Config-based call sites therefore
// keep working unchanged:
//
//	mpix.NewWorld(mpix.Config{Procs: 2})                  // compatibility path
//	mpix.NewWorld(mpix.WithRanks(4), mpix.WithReliable()) // options path
type Option interface {
	// ApplyWorldOption mutates the configuration being assembled.
	ApplyWorldOption(*mpi.Config)
}

// optionFunc adapts a closure to Option.
type optionFunc func(*mpi.Config)

func (f optionFunc) ApplyWorldOption(c *mpi.Config) { f(c) }

// WithRanks sets the number of ranks in the world (Config.Procs).
func WithRanks(n int) Option {
	return optionFunc(func(c *mpi.Config) { c.Procs = n })
}

// WithRank sets this process's world rank (Config.Rank). Only
// meaningful with a multiprocess transport.
func WithRank(r int) Option {
	return optionFunc(func(c *mpi.Config) { c.Rank = r })
}

// WithTransport selects the netmod backend (Config.Transport): the
// simulated fabric when absent, or e.g. a TCP transport from
// NewTCPTransport for a multiprocess job.
func WithTransport(t Transport) Option {
	return optionFunc(func(c *mpi.Config) { c.Transport = t })
}

// WithMetrics wires every runtime layer to the registry
// (Config.Metrics).
func WithMetrics(reg *MetricsRegistry) Option {
	return optionFunc(func(c *mpi.Config) { c.Metrics = reg })
}

// WithFaults installs a fault schedule on the simulated fabric
// (Config.Fabric.Faults); any active schedule auto-enables the
// reliability protocol.
func WithFaults(fc FaultConfig) Option {
	return optionFunc(func(c *mpi.Config) { c.Fabric.Faults = fc })
}

// WithFabric replaces the simulated-interconnect configuration
// (Config.Fabric).
func WithFabric(fc FabricConfig) Option {
	return optionFunc(func(c *mpi.Config) { c.Fabric = fc })
}

// WithReliable enables the netmod reliability protocol
// (Config.Reliable) regardless of fault injection.
func WithReliable() Option {
	return optionFunc(func(c *mpi.Config) { c.Reliable = true })
}

// WithTracer installs a protocol-event sink (Config.Tracer).
func WithTracer(fn func(TraceEvent)) Option {
	return optionFunc(func(c *mpi.Config) { c.Tracer = fn })
}

// WithGlobalLock serializes each rank's MPI calls behind one mutex,
// modeling legacy global-lock MPI implementations (Config.GlobalLock).
func WithGlobalLock() Option {
	return optionFunc(func(c *mpi.Config) { c.GlobalLock = true })
}

// WithProcsPerNode maps ranks onto simulated nodes
// (Config.ProcsPerNode).
func WithProcsPerNode(n int) Option {
	return optionFunc(func(c *mpi.Config) { c.ProcsPerNode = n })
}

// WithForceNetmod routes same-node traffic through the NIC instead of
// shared memory (Config.ForceNetmod).
func WithForceNetmod() Option {
	return optionFunc(func(c *mpi.Config) { c.ForceNetmod = true })
}

// Transport is a netmod backend (see WithTransport).
type Transport = transport.Transport
