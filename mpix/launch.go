package mpix

import (
	"fmt"
	"os"

	"gompix/internal/launch"
	"gompix/internal/mpi"
	"gompix/internal/transport"
	"gompix/internal/transport/composite"
	"gompix/internal/transport/shm"
	"gompix/internal/transport/tcp"
)

// TCPTransport is the multiprocess TCP netmod backend: ranks in
// separate OS processes exchanging length-prefixed frames over
// loopback (or any TCP-reachable address).
type TCPTransport = tcp.Network

// TCPConfig configures a TCPTransport.
type TCPConfig = tcp.Config

// NewTCPTransport binds the rank's listener and returns the transport,
// ready to pass to WithTransport. Addrs[r] must name rank r's listen
// address for every rank (Addr/SetPeerAddrs allow a late exchange when
// binding port 0).
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) { return tcp.New(cfg) }

// Launched reports whether this process was started by mpixrun. A
// program that supports both single-process (simulated fabric) and
// multiprocess runs branches on it:
//
//	var w *mpix.World
//	if mpix.Launched() {
//		w, _ = mpix.NewWorldFromEnv()
//	} else {
//		w = mpix.NewWorld(mpix.WithRanks(2))
//	}
func Launched() bool { return launch.Launched() }

// NewWorldFromEnv builds this process's single-rank World from the
// mpixrun launch contract (GOMPIX_RANK, GOMPIX_WORLD_SIZE,
// GOMPIX_ADDRS, GOMPIX_EPOCH, GOMPIX_NODE) over the node-aware
// composite transport: peers on this rank's node are reached through
// the mmap shared-memory leg, everyone else over TCP. When the rank
// has no co-located peers — or the platform lacks mmap — the world
// runs pure TCP, exactly the pre-composite behavior. Options apply on
// top, but the launch geometry — rank, world size, transport — is
// fixed by the environment.
func NewWorldFromEnv(opts ...Option) (*World, error) {
	info, err := launch.FromEnv()
	if err != nil {
		return nil, err
	}
	tr, err := launchedTransport(info)
	if err != nil {
		return nil, fmt.Errorf("mpix: launched transport: %w", err)
	}
	var cfg mpi.Config
	for _, o := range opts {
		o.ApplyWorldOption(&cfg)
	}
	cfg.Procs, cfg.Rank, cfg.Transport = info.WorldSize, info.Rank, tr
	return mpi.NewWorld(cfg), nil
}

// launchedTransport composes the job's transport from the launch info:
// TCP always (inter-node data plus the launcher's NotifyPeerDown
// control path), an shm leg when co-located peers exist and the
// platform supports it, both behind the composite router.
func launchedTransport(info launch.Info) (transport.Transport, error) {
	tn, err := tcp.New(tcp.Config{
		Rank:      info.Rank,
		WorldSize: info.WorldSize,
		Addrs:     info.Addrs,
		Epoch:     info.Epoch,
	})
	if err != nil {
		return nil, err
	}
	var local composite.Leg
	if peers := info.SameNodePeers(info.Rank); len(peers) > 0 && shm.Supported() {
		sn, err := shm.New(shm.Config{
			Rank:      info.Rank,
			WorldSize: info.WorldSize,
			Epoch:     info.Epoch,
			Peers:     peers,
		})
		if err != nil {
			// Degraded but correct: /dev/shm or TempDir unusable. TCP
			// reaches the same peers; the job just loses the fast path.
			fmt.Fprintf(os.Stderr, "mpix: rank %d: shm leg unavailable, falling back to TCP: %v\n", info.Rank, err)
		} else {
			local = sn
		}
	}
	nodes := make([]int, info.WorldSize)
	for r := range nodes {
		nodes[r] = info.NodeOf(r)
	}
	return composite.New(composite.Config{
		Rank:      info.Rank,
		WorldSize: info.WorldSize,
		NodeOf:    nodes,
	}, local, tn)
}
