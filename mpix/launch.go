package mpix

import (
	"fmt"

	"gompix/internal/launch"
	"gompix/internal/mpi"
	"gompix/internal/transport/tcp"
)

// TCPTransport is the multiprocess TCP netmod backend: ranks in
// separate OS processes exchanging length-prefixed frames over
// loopback (or any TCP-reachable address).
type TCPTransport = tcp.Network

// TCPConfig configures a TCPTransport.
type TCPConfig = tcp.Config

// NewTCPTransport binds the rank's listener and returns the transport,
// ready to pass to WithTransport. Addrs[r] must name rank r's listen
// address for every rank (Addr/SetPeerAddrs allow a late exchange when
// binding port 0).
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) { return tcp.New(cfg) }

// Launched reports whether this process was started by mpixrun. A
// program that supports both single-process (simulated fabric) and
// multiprocess runs branches on it:
//
//	var w *mpix.World
//	if mpix.Launched() {
//		w, _ = mpix.NewWorldFromEnv()
//	} else {
//		w = mpix.NewWorld(mpix.WithRanks(2))
//	}
func Launched() bool { return launch.Launched() }

// NewWorldFromEnv builds this process's single-rank World from the
// mpixrun launch contract (GOMPIX_RANK, GOMPIX_WORLD_SIZE,
// GOMPIX_ADDRS, GOMPIX_EPOCH) over the TCP transport. Options apply on
// top, but the launch geometry — rank, world size, transport — is
// fixed by the environment.
func NewWorldFromEnv(opts ...Option) (*World, error) {
	info, err := launch.FromEnv()
	if err != nil {
		return nil, err
	}
	tr, err := tcp.New(tcp.Config{
		Rank:      info.Rank,
		WorldSize: info.WorldSize,
		Addrs:     info.Addrs,
		Epoch:     info.Epoch,
	})
	if err != nil {
		return nil, fmt.Errorf("mpix: launched transport: %w", err)
	}
	var cfg mpi.Config
	for _, o := range opts {
		o.ApplyWorldOption(&cfg)
	}
	cfg.Procs, cfg.Rank, cfg.Transport = info.WorldSize, info.Rank, tr
	return mpi.NewWorld(cfg), nil
}
