package mpix_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gompix/mpix"
)

// runMatrix executes fn on an n-rank world over each transport
// backend: the simulated fabric (all ranks in-process) and TCP
// loopback (one World per rank, mirroring mpixrun's N processes).
func runMatrix(t *testing.T, n int, fn func(*mpix.Proc)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) {
		runWorld(t, mpix.Config{Procs: n, ProcsPerNode: 1}, fn)
	})
	t.Run("tcp", func(t *testing.T) {
		trs := make([]*mpix.TCPTransport, n)
		addrs := make([]string, n)
		for r := 0; r < n; r++ {
			tr, err := mpix.NewTCPTransport(mpix.TCPConfig{Rank: r, WorldSize: n})
			if err != nil {
				t.Fatalf("tcp transport rank %d: %v", r, err)
			}
			trs[r] = tr
			addrs[r] = tr.Addr()
		}
		var wg sync.WaitGroup
		errs := make([]any, n)
		for r := 0; r < n; r++ {
			trs[r].SetPeerAddrs(addrs)
			w := mpix.NewWorld(
				mpix.WithRanks(n),
				mpix.WithRank(r),
				mpix.WithTransport(trs[r]),
			)
			wg.Add(1)
			go func(i int, w *mpix.World) {
				defer wg.Done()
				defer func() { errs[i] = recover() }()
				w.Run(fn)
			}(r, w)
		}
		wg.Wait()
		for r, e := range errs {
			if e != nil {
				t.Fatalf("rank %d: %v", r, e)
			}
		}
	})
}

func TestMatrixRoundTrip(t *testing.T) {
	// Sizes spanning buffered eager, signaled eager, and rendezvous.
	sizes := []int{1, 512, 100 << 10}
	runMatrix(t, 2, func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		for _, sz := range sizes {
			msg := bytes.Repeat([]byte{byte(sz)}, sz)
			got := make([]byte, sz)
			reqS := comm.IsendBytes(msg, peer, sz)
			reqR := comm.IrecvBytes(got, peer, sz)
			reqS.Wait()
			if st := reqR.Wait(); st.Err != nil {
				panic(fmt.Sprintf("size %d: %v", sz, st.Err))
			}
			if !bytes.Equal(got, msg) {
				panic(fmt.Sprintf("size %d: corrupted", sz))
			}
		}
		comm.Barrier()
	})
}

func TestMatrixCollectivesAndComms(t *testing.T) {
	const n = 4
	runMatrix(t, n, func(p *mpix.Proc) {
		comm := p.CommWorld()
		// Allgather through the facade.
		mine := []byte{byte(p.Rank() * 3)}
		all := make([]byte, n)
		comm.Allgather(mine, 1, mpix.Byte, all)
		for r := 0; r < n; r++ {
			if all[r] != byte(r*3) {
				panic(fmt.Sprintf("allgather[%d] = %d", r, all[r]))
			}
		}
		// Derived communicator round-trip.
		half := comm.Split(p.Rank()/2, p.Rank())
		peer := 1 - half.Rank()
		msg := []byte{byte(p.Rank())}
		got := make([]byte, 1)
		reqS := half.IsendBytes(msg, peer, 0)
		reqR := half.IrecvBytes(got, peer, 0)
		reqS.Wait()
		reqR.Wait()
		if got[0] != byte(half.WorldRank(peer)) {
			panic(fmt.Sprintf("split pt2pt got %d", got[0]))
		}
		comm.Barrier()
	})
}

func TestMatrixStreamComm(t *testing.T) {
	runMatrix(t, 2, func(p *mpix.Proc) {
		s := p.StreamCreate(mpix.WithName("matrix"))
		sc := p.CommWorld().StreamComm(s)
		peer := 1 - p.Rank()
		msg := []byte{byte(7 + p.Rank())}
		got := make([]byte, 1)
		reqS := sc.IsendBytes(msg, peer, 1)
		reqR := sc.IrecvBytes(got, peer, 1)
		reqS.Wait()
		reqR.Wait()
		if got[0] != byte(7+peer) {
			panic(fmt.Sprintf("streamcomm got %d", got[0]))
		}
		sc.Barrier()
	})
}

func TestMatrixWaitCtx(t *testing.T) {
	runMatrix(t, 2, func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		// A receive with no matching send yet: WaitCtx must return the
		// context error with the request still pending.
		orphan := comm.IrecvBytes(make([]byte, 4), peer, 99)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		if _, err := orphan.WaitCtx(ctx); err != context.DeadlineExceeded {
			panic(fmt.Sprintf("orphan WaitCtx err = %v", err))
		}
		cancel()
		// Both ranks have observed the timeout; only now may the
		// matching sends be issued.
		comm.Barrier()
		// Now send the match; WaitCtx with a live context completes.
		reqS := comm.IsendBytes([]byte{1, 2, 3, 4}, peer, 99)
		if st, err := orphan.WaitCtx(context.Background()); err != nil || st.Bytes != 4 {
			panic(fmt.Sprintf("matched WaitCtx st=%+v err=%v", st, err))
		}
		reqS.Wait()
		comm.Barrier()
	})
}
