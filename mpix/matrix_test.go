package mpix_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gompix/internal/transport"
	"gompix/internal/transport/composite"
	"gompix/internal/transport/shm"
	"gompix/mpix"
)

// runMatrix executes fn on an n-rank world over each transport
// backend: the simulated fabric (all ranks in-process), TCP loopback
// (one World per rank, mirroring mpixrun's N processes), and — where
// the platform supports mmap — the node-aware composite with all ranks
// co-located, so every byte routes through the shared-memory leg.
func runMatrix(t *testing.T, n int, fn func(*mpix.Proc)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) {
		runWorld(t, mpix.Config{Procs: n, ProcsPerNode: 1}, fn)
	})
	t.Run("tcp", func(t *testing.T) {
		runTransports(t, n, fn, func(r int, addrs []string, trs []*mpix.TCPTransport) (transport.Transport, error) {
			return trs[r], nil
		})
	})
	t.Run("shm", func(t *testing.T) {
		if !shm.Supported() {
			t.Skip("shm transport not supported on this platform")
		}
		dir := t.TempDir()
		nodes := make([]int, n) // all ranks on node 0
		peersOf := func(r int) []int {
			var peers []int
			for p := 0; p < n; p++ {
				if p != r {
					peers = append(peers, p)
				}
			}
			return peers
		}
		runTransports(t, n, fn, func(r int, addrs []string, trs []*mpix.TCPTransport) (transport.Transport, error) {
			sn, err := shm.New(shm.Config{
				Rank: r, WorldSize: n, Epoch: 11, Dir: dir, Peers: peersOf(r),
				ProbeInterval: 500 * time.Microsecond,
			})
			if err != nil {
				return nil, err
			}
			return composite.New(composite.Config{Rank: r, WorldSize: n, NodeOf: nodes}, sn, trs[r])
		})
	})
}

// runTransports is the shared multiprocess-shaped harness behind the
// tcp and shm matrix legs: one TCP network per rank (the control/data
// baseline), wrapped per rank by wrap into the transport under test,
// then one World per rank run on its own goroutine.
func runTransports(t *testing.T, n int, fn func(*mpix.Proc),
	wrap func(r int, addrs []string, trs []*mpix.TCPTransport) (transport.Transport, error)) {
	t.Helper()
	trs := make([]*mpix.TCPTransport, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		tr, err := mpix.NewTCPTransport(mpix.TCPConfig{Rank: r, WorldSize: n})
		if err != nil {
			t.Fatalf("tcp transport rank %d: %v", r, err)
		}
		trs[r] = tr
		addrs[r] = tr.Addr()
	}
	// Build every world before starting any: a rank that starts running
	// can deliver frames to a peer whose World construction (codec
	// install) hasn't finished yet.
	worlds := make([]*mpix.World, n)
	for r := 0; r < n; r++ {
		trs[r].SetPeerAddrs(addrs)
		tr, err := wrap(r, addrs, trs)
		if err != nil {
			t.Fatalf("transport rank %d: %v", r, err)
		}
		worlds[r] = mpix.NewWorld(
			mpix.WithRanks(n),
			mpix.WithRank(r),
			mpix.WithTransport(tr),
		)
	}
	var wg sync.WaitGroup
	errs := make([]any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(i int, w *mpix.World) {
			defer wg.Done()
			defer func() { errs[i] = recover() }()
			w.Run(fn)
		}(r, worlds[r])
	}
	wg.Wait()
	for r, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", r, e)
		}
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	// Sizes spanning buffered eager, signaled eager, and rendezvous.
	sizes := []int{1, 512, 100 << 10}
	runMatrix(t, 2, func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		for _, sz := range sizes {
			msg := bytes.Repeat([]byte{byte(sz)}, sz)
			got := make([]byte, sz)
			reqS := comm.IsendBytes(msg, peer, sz)
			reqR := comm.IrecvBytes(got, peer, sz)
			reqS.Wait()
			if st := reqR.Wait(); st.Err != nil {
				panic(fmt.Sprintf("size %d: %v", sz, st.Err))
			}
			if !bytes.Equal(got, msg) {
				panic(fmt.Sprintf("size %d: corrupted", sz))
			}
		}
		comm.Barrier()
	})
}

func TestMatrixCollectivesAndComms(t *testing.T) {
	const n = 4
	runMatrix(t, n, func(p *mpix.Proc) {
		comm := p.CommWorld()
		// Allgather through the facade.
		mine := []byte{byte(p.Rank() * 3)}
		all := make([]byte, n)
		comm.Allgather(mine, 1, mpix.Byte, all)
		for r := 0; r < n; r++ {
			if all[r] != byte(r*3) {
				panic(fmt.Sprintf("allgather[%d] = %d", r, all[r]))
			}
		}
		// Derived communicator round-trip.
		half := comm.Split(p.Rank()/2, p.Rank())
		peer := 1 - half.Rank()
		msg := []byte{byte(p.Rank())}
		got := make([]byte, 1)
		reqS := half.IsendBytes(msg, peer, 0)
		reqR := half.IrecvBytes(got, peer, 0)
		reqS.Wait()
		reqR.Wait()
		if got[0] != byte(half.WorldRank(peer)) {
			panic(fmt.Sprintf("split pt2pt got %d", got[0]))
		}
		comm.Barrier()
	})
}

func TestMatrixStreamComm(t *testing.T) {
	runMatrix(t, 2, func(p *mpix.Proc) {
		s := p.StreamCreate(mpix.WithName("matrix"))
		sc := p.CommWorld().StreamComm(s)
		peer := 1 - p.Rank()
		msg := []byte{byte(7 + p.Rank())}
		got := make([]byte, 1)
		reqS := sc.IsendBytes(msg, peer, 1)
		reqR := sc.IrecvBytes(got, peer, 1)
		reqS.Wait()
		reqR.Wait()
		if got[0] != byte(7+peer) {
			panic(fmt.Sprintf("streamcomm got %d", got[0]))
		}
		sc.Barrier()
	})
}

// TestMatrixContinuations is the continuation conformance run: on
// every transport, each rank drives a window of recv→send echo chains
// purely from callbacks (client side uses Done channels), then checks
// set-aggregation delivers per-operation statuses.
func TestMatrixContinuations(t *testing.T) {
	const chains = 8
	const rounds = 3
	runMatrix(t, 2, func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		if p.Rank() == 0 {
			// Server: every chain re-arms itself from its callback;
			// nothing blocks until the final drain.
			cr := p.ContinueInit()
			var done atomic.Int64
			for c := 0; c < chains; c++ {
				c := c
				buf := make([]byte, 8)
				round := 0
				var arm func()
				arm = func() {
					req := comm.IrecvBytes(buf, peer, c)
					cr.Continue(req, func(s mpix.Status) {
						if s.Err != nil {
							panic(fmt.Sprintf("chain %d: %v", c, s.Err))
						}
						cr.Continue(comm.IsendBytes(buf, peer, c), func(s mpix.Status) {
							if s.Err != nil {
								panic(fmt.Sprintf("chain %d echo: %v", c, s.Err))
							}
							round++
							if round < rounds {
								arm()
							} else {
								done.Add(1)
							}
						})
					})
				}
				arm()
			}
			cr.Start()
			for done.Load() != chains {
				p.Progress()
			}
			cr.Request().Wait()
		} else {
			// Client: plain request pairs, completion observed through
			// Done channels while a progress thread drives the rank.
			stop := p.ProgressThread(nil)
			for round := 0; round < rounds; round++ {
				for c := 0; c < chains; c++ {
					msg := []byte{byte(round), byte(c), 2, 3, 4, 5, 6, 7}
					sD := comm.IsendBytes(msg, peer, c).Done()
					echo := make([]byte, 8)
					rD := comm.IrecvBytes(echo, peer, c).Done()
					<-sD
					if st := <-rD; st.Err != nil || st.Bytes != 8 {
						panic(fmt.Sprintf("round %d chain %d: %+v", round, c, st))
					}
					if !bytes.Equal(echo, msg) {
						panic(fmt.Sprintf("round %d chain %d: echo corrupted", round, c))
					}
				}
			}
			stop()
		}
		// Set aggregation: ContinueAll fires once with every status.
		cr := p.ContinueInit()
		var reqs []*mpix.Request
		for i := 0; i < 4; i++ {
			if p.Rank() == 0 {
				reqs = append(reqs, comm.IsendBytes([]byte{byte(i)}, peer, 100+i))
			} else {
				reqs = append(reqs, comm.IrecvBytes(make([]byte, 1), peer, 100+i))
			}
		}
		var got []mpix.Status
		cr.ContinueAll(reqs, func(sts []mpix.Status) { got = sts })
		cr.Start()
		if st := cr.Wait(); st.Err != nil {
			panic(fmt.Sprintf("aggregate err: %v", st.Err))
		}
		if len(got) != 4 {
			panic(fmt.Sprintf("set statuses: %d", len(got)))
		}
		for i, s := range got {
			if s.Err != nil || (p.Rank() == 1 && s.Tag != 100+i) {
				panic(fmt.Sprintf("set status %d: %+v", i, s))
			}
		}
		comm.Barrier()
	})
}

// TestMatrixContinueRevoked: on every transport, a continuation parked
// on a revoked communicator's receive fires with ErrCommRevoked.
func TestMatrixContinueRevoked(t *testing.T) {
	runMatrix(t, 2, func(p *mpix.Proc) {
		dup := p.CommWorld().Dup()
		cr := p.ContinueInit()
		var st atomic.Pointer[mpix.Status]
		pending := dup.IrecvBytes(make([]byte, 8), 1-p.Rank(), 77)
		cr.Continue(pending, func(s mpix.Status) { st.Store(&s) })
		cr.Start()
		if p.Rank() == 0 {
			dup.Revoke()
		}
		cr.Wait()
		s := st.Load()
		if s == nil || !errors.Is(s.Err, mpix.ErrCommRevoked) {
			panic(fmt.Sprintf("rank %d: continuation err = %v, want ErrCommRevoked", p.Rank(), s))
		}
		p.CommWorld().Barrier()
	})
}

func TestMatrixWaitCtx(t *testing.T) {
	runMatrix(t, 2, func(p *mpix.Proc) {
		comm := p.CommWorld()
		peer := 1 - p.Rank()
		// A receive with no matching send yet: WaitCtx must return the
		// context error with the request still pending.
		orphan := comm.IrecvBytes(make([]byte, 4), peer, 99)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		if _, err := orphan.WaitCtx(ctx); err != context.DeadlineExceeded {
			panic(fmt.Sprintf("orphan WaitCtx err = %v", err))
		}
		cancel()
		// Both ranks have observed the timeout; only now may the
		// matching sends be issued.
		comm.Barrier()
		// Now send the match; WaitCtx with a live context completes.
		reqS := comm.IsendBytes([]byte{1, 2, 3, 4}, peer, 99)
		if st, err := orphan.WaitCtx(context.Background()); err != nil || st.Bytes != 4 {
			panic(fmt.Sprintf("matched WaitCtx st=%+v err=%v", st, err))
		}
		reqS.Wait()
		comm.Barrier()
	})
}

// TestMatrixRelaxedAllreduce runs the relaxed (solo/partial) allreduce
// across the sim/tcp/shm matrix: a full-quorum round reduces exactly,
// and a straggled round settles on the quorum after the staleness
// grace with a result provably consistent with its Contributed bitmap.
// The kill-a-rank leg below (tcp only — it needs the raw networks to
// sever) asserts ErrProcFailed surfaces in the round status while
// training keeps completing on the survivors.
func TestMatrixRelaxedAllreduce(t *testing.T) {
	const n = 4
	step := func(p *mpix.Proc, opt mpix.RelaxedOptions) (*mpix.RelaxedRequest, []byte) {
		in := mpix.EncodeInt32s([]int32{int32(p.Rank() + 1)})
		out := make([]byte, len(in))
		return p.CommWorld().IallreduceRelaxed(in, out, 1, mpix.Int32, mpix.OpSum, opt), out
	}
	runMatrix(t, n, func(p *mpix.Proc) {
		// Round 1: full participation, exact allreduce.
		rr, out := step(p, mpix.RelaxedOptions{})
		if st := rr.Wait(); st.Err != nil {
			panic(fmt.Sprintf("rank %d full round: %v", p.Rank(), st.Err))
		}
		if got := mpix.DecodeInt32s(out)[0]; got != n*(n+1)/2 || rr.Result().Contributions != n {
			panic(fmt.Sprintf("rank %d full round: sum=%d result=%+v", p.Rank(), got, *rr.Result()))
		}
		// Round 2: rank n-1 straggles; the rest settle on quorum n-1
		// with a sum matching exactly the bitmap's marked ranks.
		if p.Rank() == n-1 {
			time.Sleep(100 * time.Millisecond)
		}
		rr, out = step(p, mpix.RelaxedOptions{Quorum: n - 1, Staleness: time.Millisecond})
		if st := rr.Wait(); st.Err != nil {
			panic(fmt.Sprintf("rank %d straggled round: %v", p.Rank(), st.Err))
		}
		res := rr.Result()
		want := int32(0)
		for i := 0; i < n; i++ {
			if res.Contributed.Has(i) {
				want += int32(i + 1)
			}
		}
		if got := mpix.DecodeInt32s(out)[0]; got != want || res.Contributions < n-1 {
			panic(fmt.Sprintf("rank %d straggled round: sum=%d (bitmap says %d) result=%+v",
				p.Rank(), got, want, *res))
		}
		p.CommWorld().Barrier()
	})

	t.Run("tcpkill", func(t *testing.T) {
		const victim = n - 1
		trs := make([]*mpix.TCPTransport, n)
		addrs := make([]string, n)
		for r := 0; r < n; r++ {
			tr, err := mpix.NewTCPTransport(mpix.TCPConfig{Rank: r, WorldSize: n})
			if err != nil {
				t.Fatalf("tcp transport rank %d: %v", r, err)
			}
			trs[r] = tr
			addrs[r] = tr.Addr()
		}
		worlds := make([]*mpix.World, n)
		for r := 0; r < n; r++ {
			trs[r].SetPeerAddrs(addrs)
			worlds[r] = mpix.NewWorld(
				mpix.WithRanks(n),
				mpix.WithRank(r),
				mpix.WithTransport(trs[r]),
			)
		}
		// No staleness bound: only the failure verdict can settle the
		// victim round — a hang here means the fault path is broken.
		opt := mpix.RelaxedOptions{Staleness: -1}
		var posted sync.WaitGroup
		posted.Add(n - 1)
		killed := make(chan struct{})
		park := make(chan struct{})
		errs := make([]error, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			if r == victim {
				// The victim contributes one round, then parks until
				// after the kill (the goroutine leaks, like a real
				// SIGKILL mid-job).
				go worlds[victim].Run(func(p *mpix.Proc) {
					rr, _ := step(p, opt)
					rr.Wait()
					<-park
				})
				continue
			}
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer func() {
					if e := recover(); e != nil {
						errs[r] = fmt.Errorf("rank %d panicked: %v", r, e)
					}
				}()
				worlds[r].Run(func(p *mpix.Proc) {
					rr, _ := step(p, opt)
					if st := rr.Wait(); st.Err != nil || rr.Result().Contributions != n {
						errs[r] = fmt.Errorf("rank %d warmup: err=%v result=%+v", r, st.Err, *rr.Result())
						return
					}
					rr, _ = step(p, opt) // victim is parked: blocks until the kill
					posted.Done()
					<-killed
					if st := rr.Wait(); st.Err != nil {
						errs[r] = fmt.Errorf("rank %d kill round aborted: %v", r, st.Err)
						return
					}
					res := rr.Result()
					if !errors.Is(res.Err, mpix.ErrProcFailed) || res.Contributed.Has(victim) {
						errs[r] = fmt.Errorf("rank %d kill round result %+v, want ErrProcFailed sans victim", r, *res)
						return
					}
					// Training continues on the survivors.
					for round := 0; round < 2; round++ {
						rr, out := step(p, opt)
						if st := rr.Wait(); st.Err != nil || rr.Result().Contributions != n-1 {
							errs[r] = fmt.Errorf("rank %d survivor round %d: err=%v result=%+v",
								r, round, st.Err, *rr.Result())
							return
						}
						if got := mpix.DecodeInt32s(out)[0]; got != 1+2+3 {
							errs[r] = fmt.Errorf("rank %d survivor round %d: sum %d", r, round, got)
							return
						}
					}
				})
			}(r)
		}
		posted.Wait()
		trs[victim].Kill()
		close(killed)
		close(park)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Errorf("%v", err)
			}
		}
	})
}
