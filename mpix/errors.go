package mpix

import "gompix/internal/mpi"

// Error classes carried by Status.Err / Request.Err. Match them with
// errors.Is: transport failures arrive *wrapped* in these sentinels,
// carrying the underlying cause in their message.
//
// Wrapping rules:
//
//   - ErrTruncate and ErrTimedOut are always returned bare.
//   - ErrLinkDown is returned bare when the reliability layer exhausted
//     its retransmission budget on the simulated fabric; when a real
//     transport (TCP) fails — dial timeout, connection reset, write
//     error — the operation's error wraps ErrLinkDown around the
//     transport's own error, so errors.Is(err, mpix.ErrLinkDown)
//     detects the class and err.Error() preserves the cause.
var (
	// ErrTruncate reports a receive buffer smaller than the matched
	// message (MPI_ERR_TRUNCATE).
	ErrTruncate = mpi.ErrTruncate

	// ErrTimedOut reports a WaitDeadline/TestDeadline that expired (or
	// for WaitCtx, see ctx.Err()) before the request completed. The
	// request itself is still pending.
	ErrTimedOut = mpi.ErrTimedOut

	// ErrLinkDown reports that the peer became unreachable: the
	// reliability layer gave up retransmitting, or the underlying
	// transport connection failed.
	ErrLinkDown = mpi.ErrLinkDown
)
