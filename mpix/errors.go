package mpix

import "gompix/internal/mpi"

// Error classes carried by Status.Err / Request.Err. Match them with
// errors.Is: transport failures arrive *wrapped* in these sentinels,
// carrying the underlying cause in their message.
//
// Wrapping rules:
//
//   - ErrTruncate and ErrTimedOut are always returned bare.
//   - ErrLinkDown is returned bare when the reliability layer exhausted
//     its retransmission budget on the simulated fabric; when a real
//     transport (TCP) fails — dial timeout, connection reset, write
//     error — the operation's error wraps ErrLinkDown around the
//     transport's own error, so errors.Is(err, mpix.ErrLinkDown)
//     detects the class and err.Error() preserves the cause.
//   - ErrProcFailed always arrives wrapped, carrying the failed rank
//     and the transport's diagnosis ("rank 2: tcp: rank 2 unreachable
//     after 3 redial attempts: ..."). One caveat: sends whose bytes
//     were already queued on the wire when the connection died may
//     surface as wrapped ErrLinkDown instead — the failure raced the
//     verdict. Everything initiated at or after the verdict reports
//     ErrProcFailed.
//   - ErrCommRevoked is always returned bare.
//
// The same rules apply unchanged to continuation-delivered statuses:
// a callback registered with Request.OnComplete or
// ContinueRequest.Continue receives the operation's Status verbatim,
// so errors.Is(s.Err, mpix.ErrProcFailed) inside a callback behaves
// exactly like it does after Wait. A ContinueRequest's own aggregate
// status carries the *first* error any of its callbacks observed
// (unwrapped from nothing — it is the operation's error value itself),
// so errors.Is works on the aggregate too; no new sentinel exists for
// "a continuation failed".
var (
	// ErrTruncate reports a receive buffer smaller than the matched
	// message (MPI_ERR_TRUNCATE).
	ErrTruncate = mpi.ErrTruncate

	// ErrTimedOut reports a WaitDeadline/TestDeadline that expired (or
	// for WaitCtx, see ctx.Err()) before the request completed. The
	// request itself is still pending.
	ErrTimedOut = mpi.ErrTimedOut

	// ErrLinkDown reports that the peer became unreachable: the
	// reliability layer gave up retransmitting, or the underlying
	// transport connection failed.
	ErrLinkDown = mpi.ErrLinkDown

	// ErrProcFailed reports that the peer *process* an operation
	// depends on was declared failed: in remote (multiprocess) mode the
	// transport lost its connection, exhausted the re-dial budget, and
	// delivered a failure verdict. Pending and future operations that
	// need the dead rank — point-to-point and collectives — complete
	// with this error instead of hanging.
	ErrProcFailed = mpi.ErrProcFailed

	// ErrCommRevoked reports that the communicator an operation ran on
	// was revoked (Comm.Revoke, the ULFM MPIX_Comm_revoke): some rank
	// observed a failure and withdrew the communicator from service.
	// Pending operations complete with it, new operations fail at
	// initiation, and only the recovery operations — Comm.Agree,
	// Comm.Shrink, Comm.FailedRanks, Comm.AckFailed — keep working.
	// Distinct from ErrProcFailed: a revoked communicator's peers are
	// not necessarily dead.
	ErrCommRevoked = mpi.ErrCommRevoked
)
