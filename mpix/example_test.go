package mpix_test

import (
	"fmt"
	"sync/atomic"

	"gompix/mpix"
)

// The paper's Listing 1.3: dummy async tasks with a synchronization
// counter and an explicit wait-progress loop.
func Example_asyncTasks() {
	w := mpix.NewWorld(mpix.Config{Procs: 1})
	w.Run(func(p *mpix.Proc) {
		var counter atomic.Int64
		counter.Store(3)
		finish := p.Wtime() + 0.0002
		for i := 0; i < 3; i++ {
			p.AsyncStart(func(th mpix.Thing) mpix.PollOutcome {
				if th.Engine().Wtime() >= finish {
					counter.Add(-1)
					return mpix.Done
				}
				return mpix.NoProgress
			}, nil, nil) // nil = MPIX_STREAM_NULL
		}
		for counter.Load() > 0 {
			p.Progress() // MPIX_Stream_progress(MPIX_STREAM_NULL)
		}
		fmt.Println("all tasks completed")
	})
	// Output: all tasks completed
}

// Basic two-rank message passing through the world communicator.
func Example_pingpong() {
	w := mpix.NewWorld(mpix.Config{Procs: 2})
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.SendBytes([]byte("ping"), 1, 0)
			buf := make([]byte, 4)
			comm.RecvBytes(buf, 1, 0)
			fmt.Printf("rank 0 got %q\n", buf)
		} else {
			buf := make([]byte, 4)
			comm.RecvBytes(buf, 0, 0)
			comm.SendBytes([]byte("pong"), 0, 0)
		}
	})
	// Output: rank 0 got "pong"
}

// A nonblocking allreduce observed with the side-effect-free
// completion query while other work could run.
func Example_allreduce() {
	w := mpix.NewWorld(mpix.Config{Procs: 4})
	w.Run(func(p *mpix.Proc) {
		comm := p.CommWorld()
		in := mpix.EncodeInt32s([]int32{int32(p.Rank() + 1)})
		out := make([]byte, 4)
		req := comm.Iallreduce(in, out, 1, mpix.Int32, mpix.OpSum)
		for !req.IsComplete() { // MPIX_Request_is_complete
			p.Progress()
		}
		if p.Rank() == 0 {
			fmt.Println("sum =", mpix.DecodeInt32s(out)[0])
		}
	})
	// Output: sum = 10
}

// Stream communicators isolate traffic and progress per thread
// (the paper's §3.1).
func Example_streamComm() {
	w := mpix.NewWorld(mpix.Config{Procs: 2})
	w.Run(func(p *mpix.Proc) {
		s := p.StreamCreate(mpix.WithName("io"))
		sc := p.CommWorld().StreamComm(s)
		peer := 1 - p.Rank()
		rreq := sc.IrecvBytes(make([]byte, 2), peer, 0)
		sreq := sc.IsendBytes([]byte{1, 2}, peer, 0)
		for !mpix.TestAll(sreq, rreq) {
			p.StreamProgress(s)
		}
		if p.Rank() == 0 {
			fmt.Println("exchanged on a dedicated stream")
		}
		p.StreamFree(s)
	})
	// Output: exchanged on a dedicated stream
}
