package mpix

// Re-exports of the user-level libraries built on the extension APIs —
// each one a demonstration of the paper's §2.7 thesis that
// interoperable progress lets MPI subsystems live outside the core:
//
//   - rma:     one-sided communication (windows, Put/Get/Accumulate,
//              fence epochs) over MPIX Async + Peek.
//   - future:  event-driven futures/promises resolved inside progress.
//   - sched:   the MPIX Schedule proposal (§5.3) over MPIX Async.
//   - offload: a simulated accelerator whose queues are progressed as
//              MPIX Async things.

import (
	"gompix/internal/future"
	"gompix/internal/offload"
	"gompix/internal/rma"
	"gompix/internal/sched"
)

// Win is a one-sided communication window (user-level MPI_Win).
type Win = rma.Win

// WinCreate exposes base on every rank of comm (MPI_Win_create).
// Collective.
func WinCreate(comm *Comm, base []byte) *Win { return rma.Create(comm, base) }

// ErrRMARange reports a one-sided operation outside the target window.
var ErrRMARange = rma.ErrRange

// Future is a write-once value resolved from a progress context.
type Future = future.Future

// Promise resolves a Future from application code.
type Promise = future.Promise

// Executor binds futures to a progress stream.
type Executor = future.Executor

// NewPromise returns a promise and its future.
func NewPromise() (*Promise, *Future) { return future.NewPromise() }

// NewExecutor returns an executor on the given stream (nil = NULL).
func NewExecutor(p *Proc, s *Stream) *Executor { return future.NewExecutor(p, s) }

// WhenAll resolves when every input resolves.
func WhenAll(fs ...*Future) *Future { return future.WhenAll(fs...) }

// WhenAny resolves with the first input to resolve.
func WhenAny(fs ...*Future) *Future { return future.WhenAny(fs...) }

// Schedule is a user-constructed schedule of rounds of MPI operations
// (the MPIX Schedule proposal, built here on MPIX Async).
type Schedule = sched.Schedule

// NewSchedule creates an empty schedule progressed by the given stream.
func NewSchedule(p *Proc, s *Stream) *Schedule { return sched.New(p, s) }

// ScheduleLocal wraps a local step as a schedule operation.
func ScheduleLocal(fn func()) sched.Op { return sched.Local(fn) }

// Device is a simulated accelerator.
type Device = offload.Device

// DeviceQueue is a FIFO device queue (CUDA-stream analogue).
type DeviceQueue = offload.Queue

// DeviceConfig models the accelerator's performance envelope.
type DeviceConfig = offload.Config

// NewDevice creates a simulated accelerator on the proc's clock.
func NewDevice(p *Proc, cfg DeviceConfig) *Device {
	return offload.NewDevice(p.Engine().Clock(), cfg)
}
