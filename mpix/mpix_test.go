package mpix_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gompix/mpix"
)

func runWorld(t *testing.T, cfg mpix.Config, fn func(*mpix.Proc)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		mpix.NewWorld(cfg).Run(fn)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("world did not finish")
	}
}

func TestQuickstartPattern(t *testing.T) {
	// The README example: Listing 1.3's counter + wait-progress loop.
	runWorld(t, mpix.Config{Procs: 1}, func(p *mpix.Proc) {
		var counter atomic.Int64
		counter.Store(5)
		finish := p.Wtime() + 0.0005
		for i := 0; i < 5; i++ {
			p.AsyncStart(func(th mpix.Thing) mpix.PollOutcome {
				if th.Engine().Wtime() >= finish {
					counter.Add(-1)
					return mpix.Done
				}
				return mpix.NoProgress
			}, nil, nil)
		}
		for counter.Load() > 0 {
			p.Progress()
		}
	})
}

func TestFacadeMessaging(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 2}, func(p *mpix.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.SendBytes([]byte("hello"), 1, 7)
		} else {
			buf := make([]byte, 5)
			st := comm.RecvBytes(buf, mpix.AnySource, mpix.AnyTag)
			if st.Source != 0 || st.Tag != 7 || string(buf) != "hello" {
				t.Errorf("status %+v buf %q", st, buf)
			}
		}
	})
}

func TestFacadeDatatypesAndCollectives(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 4}, func(p *mpix.Proc) {
		comm := p.CommWorld()
		in := mpix.EncodeInt64s([]int64{int64(p.Rank() + 1)})
		out := make([]byte, 8)
		comm.Allreduce(in, out, 1, mpix.Int64, mpix.OpSum)
		if got := mpix.DecodeInt64s(out)[0]; got != 10 {
			t.Errorf("allreduce = %d", got)
		}
		// Derived datatype through the facade.
		vec := mpix.Vector(2, 1, 3, mpix.Int32)
		if vec.Size() != 8 {
			t.Errorf("vector size = %d", vec.Size())
		}
	})
}

func TestFacadeStreamsAndRequests(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 2}, func(p *mpix.Proc) {
		comm := p.CommWorld()
		s := p.StreamCreate(mpix.WithName("io"))
		sc := comm.StreamComm(s)
		peer := 1 - p.Rank()
		rreq := sc.IrecvBytes(make([]byte, 4), peer, 0)
		sreq := sc.IsendBytes([]byte{1, 2, 3, 4}, peer, 0)
		for !mpix.TestAll(sreq, rreq) {
			p.StreamProgress(s)
		}
		if i, st := mpix.WaitAny(sreq, rreq); st.Err != nil {
			t.Errorf("WaitAny(%d) err %v", i, st.Err)
		}
		if _, _, ok := mpix.TestAny(sreq); !ok {
			t.Error("TestAny should see completion")
		}
		mpix.WaitAll(sreq, rreq)
		p.StreamFree(s)
	})
}

func TestFacadeGrequestAndContinue(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 1}, func(p *mpix.Proc) {
		greq := p.GrequestStart(nil, nil, nil, nil)
		cr := p.ContinueInit()
		fired := false
		cr.Continue(greq, func(mpix.Status) { fired = true })
		cr.Start()
		p.AsyncStart(func(mpix.Thing) mpix.PollOutcome {
			greq.GrequestComplete()
			return mpix.Done
		}, nil, nil)
		cr.Request().Wait()
		if !fired {
			t.Error("continuation never fired")
		}
	})
}

func TestFacadeErrTruncate(t *testing.T) {
	runWorld(t, mpix.Config{Procs: 2}, func(p *mpix.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			comm.SendBytes(make([]byte, 100), 1, 0)
		} else {
			st := comm.RecvBytes(make([]byte, 10), 0, 0)
			if st.Err != mpix.ErrTruncate {
				t.Errorf("err = %v", st.Err)
			}
		}
	})
}

func TestFacadeFaultInjection(t *testing.T) {
	// The new robustness surface end-to-end through the facade: a lossy
	// fabric auto-enables the reliability layer, delivery stays exact,
	// and a permanently partitioned peer surfaces ErrLinkDown /
	// ErrTimedOut from WaitDeadline instead of hanging.
	cfg := mpix.Config{
		Procs:        2,
		ProcsPerNode: 1,
		Fabric: mpix.FabricConfig{
			Faults: mpix.FaultConfig{DropProb: 0.05, DupProb: 0.02, Seed: 3},
		},
	}
	runWorld(t, cfg, func(p *mpix.Proc) {
		comm := p.CommWorld()
		msg := []byte("exactly once, in order")
		if p.Rank() == 0 {
			comm.SendBytes(msg, 1, 0)
		} else {
			buf := make([]byte, len(msg))
			comm.RecvBytes(buf, 0, 0)
			if string(buf) != string(msg) {
				t.Errorf("lossy fabric corrupted payload: %q", buf)
			}
		}
	})

	cfg.Fabric.Faults = mpix.FaultConfig{
		Partitions: []mpix.Partition{{SrcNode: 0, DstNode: 1, Bidirectional: true}},
	}
	cfg.RetxTimeout = 50 * time.Microsecond
	runWorld(t, cfg, func(p *mpix.Proc) {
		comm := p.CommWorld()
		if p.Rank() == 0 {
			req := comm.IsendBytes(make([]byte, 4096), 1, 0)
			// errors.Is: transport failures may wrap ErrLinkDown around
			// the underlying cause (see mpix/errors.go).
			if _, err := req.WaitDeadline(10 * time.Second); !errors.Is(err, mpix.ErrLinkDown) {
				t.Errorf("partitioned send err = %v, want ErrLinkDown", err)
			}
		} else {
			req := comm.IrecvBytes(make([]byte, 4096), 0, 0)
			if _, err := req.WaitDeadline(2 * time.Millisecond); err != mpix.ErrTimedOut {
				t.Errorf("orphaned recv err = %v, want ErrTimedOut", err)
			}
			req.Cancel()
		}
	})
}
